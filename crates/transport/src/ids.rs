//! Identifiers for ranks and nodes, and the cluster topology that maps
//! between them.

use std::fmt;

/// Global identifier of a rank (a worker process in the paper's terms).
///
/// Rank ids are assigned once by the runtime and never reused, even after
/// the rank fails — exactly like MPI process identities inside a ULFM run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RankId(pub usize);

/// Identifier of a physical node. Several ranks live on one node; killing a
/// node kills all of them (the paper's "drop the entire node" policy).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Debug for RankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for RankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Static mapping from ranks to nodes.
///
/// Mirrors Summit's layout in the paper: each node hosts `ranks_per_node`
/// workers (6 GPUs per node on Summit). Ranks are packed densely:
/// rank `r` lives on node `r / ranks_per_node`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    ranks_per_node: usize,
}

impl Topology {
    /// A topology with `ranks_per_node` ranks packed per node.
    ///
    /// # Panics
    /// Panics if `ranks_per_node` is zero.
    pub fn new(ranks_per_node: usize) -> Self {
        assert!(ranks_per_node > 0, "ranks_per_node must be positive");
        Self { ranks_per_node }
    }

    /// Summit-like layout: 6 workers (GPUs) per node.
    pub fn summit() -> Self {
        Self::new(6)
    }

    /// One rank per node (process-level == node-level).
    pub fn flat() -> Self {
        Self::new(1)
    }

    /// Number of ranks hosted on each node.
    pub fn ranks_per_node(&self) -> usize {
        self.ranks_per_node
    }

    /// The node hosting `rank`.
    pub fn node_of(&self, rank: RankId) -> NodeId {
        NodeId(rank.0 / self.ranks_per_node)
    }

    /// All ranks co-located with `rank` (including itself), given the total
    /// number of ranks ever created.
    pub fn node_peers(&self, rank: RankId, total_ranks: usize) -> Vec<RankId> {
        let node = self.node_of(rank);
        self.ranks_on_node(node, total_ranks)
    }

    /// All ranks on `node` among the first `total_ranks` ranks.
    pub fn ranks_on_node(&self, node: NodeId, total_ranks: usize) -> Vec<RankId> {
        let lo = node.0 * self.ranks_per_node;
        let hi = ((node.0 + 1) * self.ranks_per_node).min(total_ranks);
        (lo..hi).map(RankId).collect()
    }

    /// Number of nodes needed to host `total_ranks` ranks.
    pub fn nodes_for(&self, total_ranks: usize) -> usize {
        total_ranks.div_ceil(self.ranks_per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_of_packs_densely() {
        let t = Topology::new(6);
        assert_eq!(t.node_of(RankId(0)), NodeId(0));
        assert_eq!(t.node_of(RankId(5)), NodeId(0));
        assert_eq!(t.node_of(RankId(6)), NodeId(1));
        assert_eq!(t.node_of(RankId(23)), NodeId(3));
    }

    #[test]
    fn node_peers_includes_self_and_clips_to_total() {
        let t = Topology::new(4);
        assert_eq!(
            t.node_peers(RankId(5), 7),
            vec![RankId(4), RankId(5), RankId(6)]
        );
    }

    #[test]
    fn ranks_on_node_full_node() {
        let t = Topology::summit();
        assert_eq!(
            t.ranks_on_node(NodeId(1), 24),
            (6..12).map(RankId).collect::<Vec<_>>()
        );
    }

    #[test]
    fn nodes_for_rounds_up() {
        let t = Topology::new(6);
        assert_eq!(t.nodes_for(24), 4);
        assert_eq!(t.nodes_for(25), 5);
        assert_eq!(t.nodes_for(1), 1);
        assert_eq!(t.nodes_for(0), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ranks_per_node_rejected() {
        Topology::new(0);
    }

    #[test]
    fn flat_topology_is_one_per_node() {
        let t = Topology::flat();
        assert_eq!(t.node_of(RankId(7)), NodeId(7));
        assert_eq!(t.node_peers(RankId(7), 16), vec![RankId(7)]);
    }
}
