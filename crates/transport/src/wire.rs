//! Byte-level encoding helpers and the link-layer frame codec.
//!
//! Collectives and control protocols exchange typed values over a byte
//! transport; `Wire` gives the handful of primitive types we need a
//! stable little-endian encoding without pulling in a serialization
//! framework on the hot path.
//!
//! The frame codec ([`encode_frame`] / [`decode_frame`]) wraps every
//! fabric message in a checksummed, sequence-numbered envelope so the
//! transport can detect corruption, suppress duplicates, and reassemble
//! per-channel order under an adversarial [`crate::PerturbPlan`].

use crate::ids::RankId;

/// Fixed-width little-endian encoding for primitive scalars.
pub trait Wire: Copy + Send + Sync + 'static {
    /// Encoded size in bytes.
    const WIDTH: usize;
    /// Append the encoding of `self` to `out`.
    fn write(&self, out: &mut Vec<u8>);
    /// Decode from exactly [`Self::WIDTH`] bytes.
    fn read(bytes: &[u8]) -> Self;

    /// Encode a slice.
    fn encode_slice(vals: &[Self]) -> Vec<u8> {
        let mut out = Vec::with_capacity(vals.len() * Self::WIDTH);
        for v in vals {
            v.write(&mut out);
        }
        out
    }

    /// Decode a whole buffer into a vector.
    ///
    /// # Panics
    /// Panics if `bytes.len()` is not a multiple of [`Self::WIDTH`].
    fn decode_slice(bytes: &[u8]) -> Vec<Self> {
        assert!(
            bytes.len().is_multiple_of(Self::WIDTH),
            "buffer length {} is not a multiple of element width {}",
            bytes.len(),
            Self::WIDTH
        );
        bytes.chunks_exact(Self::WIDTH).map(Self::read).collect()
    }
}

macro_rules! impl_wire {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            fn write(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn read(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes[..Self::WIDTH].try_into().unwrap())
            }
        }
    )*};
}

impl_wire!(f32, f64, u8, u16, u32, u64, i32, i64);

/// Encode a slice of `f32` as little-endian bytes.
pub fn f32s_to_bytes(vals: &[f32]) -> Vec<u8> {
    f32::encode_slice(vals)
}

/// Decode little-endian bytes into `f32`s.
pub fn bytes_to_f32s(bytes: &[u8]) -> Vec<f32> {
    f32::decode_slice(bytes)
}

/// Encode a slice of `u64` as little-endian bytes.
pub fn u64s_to_bytes(vals: &[u64]) -> Vec<u8> {
    u64::encode_slice(vals)
}

/// Decode little-endian bytes into `u64`s.
pub fn bytes_to_u64s(bytes: &[u8]) -> Vec<u64> {
    u64::decode_slice(bytes)
}

// ---------------------------------------------------------------------------
// Link-layer frame codec.
// ---------------------------------------------------------------------------

/// Frame layout (all little-endian):
///
/// ```text
/// offset  0  u32  magic  "ELFR"
/// offset  4  u64  src rank
/// offset 12  u64  tag
/// offset 20  u64  per-(link, tag) sequence number
/// offset 28  u32  payload length
/// offset 32  ...  payload
/// tail       u64  FNV-1a-64 over every preceding byte
/// ```
const FRAME_MAGIC: u32 = 0x454c_4652; // "ELFR"
/// Fixed bytes before the payload.
pub const FRAME_HEADER: usize = 32;
/// Checksum trailer size.
pub const FRAME_TRAILER: usize = 8;

/// A decoded, checksum-verified link frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Sender of the frame.
    pub src: RankId,
    /// Application tag (the (src, tag) pair names the ordered channel).
    pub tag: u64,
    /// Sequence number within the (src, tag) channel, starting at 0.
    pub seq: u64,
    /// Application payload.
    pub payload: Vec<u8>,
}

/// Why a byte buffer failed to decode as a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than header + trailer.
    TooShort,
    /// Magic word mismatch.
    BadMagic,
    /// Declared payload length disagrees with the buffer length.
    LengthMismatch,
    /// FNV-1a checksum mismatch (bit corruption in transit).
    BadChecksum,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooShort => write!(f, "frame shorter than header + trailer"),
            FrameError::BadMagic => write!(f, "frame magic mismatch"),
            FrameError::LengthMismatch => write!(f, "frame length field disagrees with buffer"),
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
        }
    }
}

/// FNV-1a 64-bit hash — cheap, dependency-free, and sensitive to any
/// single-bit flip, which is all a link checksum needs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encode one link frame.
pub fn encode_frame(src: RankId, tag: u64, seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len() + FRAME_TRAILER);
    FRAME_MAGIC.write(&mut out);
    (src.0 as u64).write(&mut out);
    tag.write(&mut out);
    seq.write(&mut out);
    (payload.len() as u32).write(&mut out);
    out.extend_from_slice(payload);
    fnv1a64(&out).write(&mut out);
    out
}

/// Decode and verify one link frame.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, FrameError> {
    if bytes.len() < FRAME_HEADER + FRAME_TRAILER {
        return Err(FrameError::TooShort);
    }
    if u32::read(&bytes[0..4]) != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let len = u32::read(&bytes[28..32]) as usize;
    if bytes.len() != FRAME_HEADER + len + FRAME_TRAILER {
        return Err(FrameError::LengthMismatch);
    }
    let body = &bytes[..FRAME_HEADER + len];
    let want = u64::read(&bytes[FRAME_HEADER + len..]);
    if fnv1a64(body) != want {
        return Err(FrameError::BadChecksum);
    }
    Ok(Frame {
        src: RankId(u64::read(&bytes[4..12]) as usize),
        tag: u64::read(&bytes[12..20]),
        seq: u64::read(&bytes[20..28]),
        payload: bytes[FRAME_HEADER..FRAME_HEADER + len].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip() {
        let xs = vec![0.0f32, -1.5, 3.25e7, f32::INFINITY, f32::MIN_POSITIVE];
        assert_eq!(bytes_to_f32s(&f32s_to_bytes(&xs)), xs);
    }

    #[test]
    fn u64_roundtrip() {
        let xs = vec![0u64, 1, u64::MAX, 0xdead_beef];
        assert_eq!(bytes_to_u64s(&u64s_to_bytes(&xs)), xs);
    }

    #[test]
    fn nan_payload_survives() {
        let xs = vec![f32::NAN];
        let back = bytes_to_f32s(&f32s_to_bytes(&xs));
        assert!(back[0].is_nan());
    }

    #[test]
    fn mixed_widths() {
        let mut buf = Vec::new();
        42u16.write(&mut buf);
        (-7i32).write(&mut buf);
        assert_eq!(u16::read(&buf[0..2]), 42);
        assert_eq!(i32::read(&buf[2..6]), -7);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn decode_rejects_ragged_buffer() {
        bytes_to_f32s(&[0u8; 5]);
    }

    #[test]
    fn empty_slices() {
        assert!(f32s_to_bytes(&[]).is_empty());
        assert!(bytes_to_f32s(&[]).is_empty());
    }

    #[test]
    fn frame_roundtrip() {
        let enc = encode_frame(RankId(3), 0xdead, 42, b"payload");
        let f = decode_frame(&enc).unwrap();
        assert_eq!(f.src, RankId(3));
        assert_eq!(f.tag, 0xdead);
        assert_eq!(f.seq, 42);
        assert_eq!(f.payload, b"payload");
    }

    #[test]
    fn frame_roundtrip_empty_payload() {
        let enc = encode_frame(RankId(0), 0, 0, b"");
        assert_eq!(decode_frame(&enc).unwrap().payload, b"");
    }

    #[test]
    fn frame_rejects_any_single_bit_flip() {
        let enc = encode_frame(RankId(1), 7, 9, b"abcdef");
        for byte in 0..enc.len() {
            for bit in 0..8 {
                let mut bad = enc.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_frame(&bad).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn frame_rejects_truncation_and_extension() {
        let enc = encode_frame(RankId(1), 7, 9, b"abcdef");
        assert!(decode_frame(&enc[..enc.len() - 1]).is_err());
        let mut long = enc.clone();
        long.push(0);
        assert!(decode_frame(&long).is_err());
        assert_eq!(decode_frame(&[]), Err(FrameError::TooShort));
    }

    #[test]
    fn frame_rejects_bad_magic() {
        let mut enc = encode_frame(RankId(1), 7, 9, b"x");
        enc[0] = 0;
        // Magic is checked before the checksum, so the error is specific.
        assert_eq!(decode_frame(&enc), Err(FrameError::BadMagic));
    }

    #[test]
    fn fnv_is_stable() {
        // Known FNV-1a-64 vectors; the checksum is part of the wire format.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
