//! Byte-level encoding helpers.
//!
//! Collectives and control protocols exchange typed values over a byte
//! transport; `Wire` gives the handful of primitive types we need a
//! stable little-endian encoding without pulling in a serialization
//! framework on the hot path.

/// Fixed-width little-endian encoding for primitive scalars.
pub trait Wire: Copy + Send + Sync + 'static {
    /// Encoded size in bytes.
    const WIDTH: usize;
    /// Append the encoding of `self` to `out`.
    fn write(&self, out: &mut Vec<u8>);
    /// Decode from exactly [`Self::WIDTH`] bytes.
    fn read(bytes: &[u8]) -> Self;

    /// Encode a slice.
    fn encode_slice(vals: &[Self]) -> Vec<u8> {
        let mut out = Vec::with_capacity(vals.len() * Self::WIDTH);
        for v in vals {
            v.write(&mut out);
        }
        out
    }

    /// Decode a whole buffer into a vector.
    ///
    /// # Panics
    /// Panics if `bytes.len()` is not a multiple of [`Self::WIDTH`].
    fn decode_slice(bytes: &[u8]) -> Vec<Self> {
        assert!(
            bytes.len().is_multiple_of(Self::WIDTH),
            "buffer length {} is not a multiple of element width {}",
            bytes.len(),
            Self::WIDTH
        );
        bytes.chunks_exact(Self::WIDTH).map(Self::read).collect()
    }
}

macro_rules! impl_wire {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            fn write(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn read(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes[..Self::WIDTH].try_into().unwrap())
            }
        }
    )*};
}

impl_wire!(f32, f64, u8, u16, u32, u64, i32, i64);

/// Encode a slice of `f32` as little-endian bytes.
pub fn f32s_to_bytes(vals: &[f32]) -> Vec<u8> {
    f32::encode_slice(vals)
}

/// Decode little-endian bytes into `f32`s.
pub fn bytes_to_f32s(bytes: &[u8]) -> Vec<f32> {
    f32::decode_slice(bytes)
}

/// Encode a slice of `u64` as little-endian bytes.
pub fn u64s_to_bytes(vals: &[u64]) -> Vec<u8> {
    u64::encode_slice(vals)
}

/// Decode little-endian bytes into `u64`s.
pub fn bytes_to_u64s(bytes: &[u8]) -> Vec<u64> {
    u64::decode_slice(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip() {
        let xs = vec![0.0f32, -1.5, 3.25e7, f32::INFINITY, f32::MIN_POSITIVE];
        assert_eq!(bytes_to_f32s(&f32s_to_bytes(&xs)), xs);
    }

    #[test]
    fn u64_roundtrip() {
        let xs = vec![0u64, 1, u64::MAX, 0xdead_beef];
        assert_eq!(bytes_to_u64s(&u64s_to_bytes(&xs)), xs);
    }

    #[test]
    fn nan_payload_survives() {
        let xs = vec![f32::NAN];
        let back = bytes_to_f32s(&f32s_to_bytes(&xs));
        assert!(back[0].is_nan());
    }

    #[test]
    fn mixed_widths() {
        let mut buf = Vec::new();
        42u16.write(&mut buf);
        (-7i32).write(&mut buf);
        assert_eq!(u16::read(&buf[0..2]), 42);
        assert_eq!(i32::read(&buf[2..6]), -7);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn decode_rejects_ragged_buffer() {
        bytes_to_f32s(&[0u8; 5]);
    }

    #[test]
    fn empty_slices() {
        assert!(f32s_to_bytes(&[]).is_empty());
        assert!(bytes_to_f32s(&[]).is_empty());
    }
}
