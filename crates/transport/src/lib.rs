//! In-memory, fault-injectable message transport.
//!
//! This crate is the lowest layer of the elastic-training reproduction. It
//! plays the role that the network fabric plus the MPI runtime's failure
//! detector play on a real machine:
//!
//! * every *rank* (worker process in the paper) owns a [`Mailbox`] and is
//!   addressed by a [`RankId`];
//! * ranks exchange tagged byte messages through a shared [`Fabric`];
//! * ranks can *fail* — abruptly, possibly in the middle of a collective —
//!   either because a test killed them from the outside
//!   ([`Fabric::kill_rank`] / [`Fabric::kill_node`]) or because a scripted
//!   [`FaultPlan`] told the rank to die at a specific operation count;
//! * surviving ranks observe failures exactly the way ULFM prescribes:
//!   an operation that needs a dead peer returns an error *for that
//!   operation*; nothing is torn down globally.
//!
//! The transport is deliberately reliable and FIFO per (sender, receiver,
//! tag) channel, matching MPI's ordering guarantees. Failure detection is
//! *perfect* (a dead rank is immediately observable via the alive table).
//! ULFM only requires an eventually-perfect detector; using a perfect one
//! is the standard simulation simplification and only makes detection
//! latencies optimistic by a constant, which the discrete-event model in
//! the `simnet` crate accounts for separately.

#![warn(missing_docs)]

mod error;
mod fabric;
mod fault;
mod ids;
mod mailbox;
mod wire;

pub use error::TransportError;
pub use fabric::{Endpoint, Fabric, FabricStats};
pub use fault::{FaultInjector, FaultPlan, FaultTrigger};
pub use ids::{NodeId, RankId, Topology};
pub use mailbox::{Envelope, Mailbox, RecvOutcome};
pub use wire::{bytes_to_f32s, bytes_to_u64s, f32s_to_bytes, u64s_to_bytes, Wire};
