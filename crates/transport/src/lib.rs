//! In-memory, fault-injectable message transport.
//!
//! This crate is the lowest layer of the elastic-training reproduction. It
//! plays the role that the network fabric plus the MPI runtime's failure
//! detector play on a real machine:
//!
//! * every *rank* (worker process in the paper) owns a [`Mailbox`] and is
//!   addressed by a [`RankId`];
//! * ranks exchange tagged byte messages through a shared [`Fabric`];
//! * ranks can *fail* — abruptly, possibly in the middle of a collective —
//!   either because a test killed them from the outside
//!   ([`Fabric::kill_rank`] / [`Fabric::kill_node`]) or because a scripted
//!   [`FaultPlan`] told the rank to die at a specific operation count;
//! * surviving ranks observe failures exactly the way ULFM prescribes:
//!   an operation that needs a dead peer returns an error *for that
//!   operation*; nothing is torn down globally.
//!
//! The transport presents a reliable, FIFO-per-(sender, receiver, tag)
//! channel to its users, matching MPI's ordering guarantees — but it no
//! longer *assumes* a perfect link underneath. Every message travels as a
//! checksummed, sequence-numbered frame (see [`wire`]); a seeded
//! [`PerturbPlan`] can drop, delay, duplicate, reorder, or bit-flip frames
//! per link, and the fabric heals those with receiver-side deduplication
//! plus bounded retransmission under exponential backoff
//! ([`RetryPolicy`]). Failure detection is likewise two-tiered:
//!
//! * the alive table still gives the instantaneous, "perfect-detector" view
//!   used for clean fail-stop deaths;
//! * timeout-based *suspicion* ([`Fabric::set_suspicion_timeout`]) covers
//!   silent failures: a send whose retries exhaust, or a blocking receive
//!   that stalls past the deadline, declares the unresponsive peer dead and
//!   reports [`TransportError::PeerDead`] — the eventually-perfect detector
//!   ULFM actually requires.
//!
//! All of the above sits behind the [`Backend`] trait: the in-process
//! fabric is one implementation ([`Endpoint::new`]), and [`SocketBackend`]
//! provides the same contract across OS processes over TCP or Unix-domain
//! stream sockets (see [`backend`] and [`socket`]).

#![warn(missing_docs)]

pub mod backend;
mod error;
mod fabric;
mod fault;
mod ids;
mod mailbox;
mod perturb;
pub mod socket;
pub mod stream;
pub mod wire;

pub use backend::{Backend, BackendKind, Endpoint, SignalHandler};
pub use error::TransportError;
pub use fabric::{Fabric, FabricStats};
pub use fault::{FaultInjector, FaultPlan, FaultTrigger};
pub use ids::{NodeId, RankId, Topology};
pub use mailbox::{Envelope, FrameAck, Mailbox, RecvOutcome};
pub use perturb::{LinkPerturb, PerturbPlan, Perturber, RetryPolicy};
pub use socket::{SocketBackend, SocketListener};
pub use stream::{encode_envelope, StreamDecoder, StreamEnvelope, StreamError, StreamKind};
pub use wire::{bytes_to_f32s, bytes_to_u64s, f32s_to_bytes, u64s_to_bytes, Wire};
