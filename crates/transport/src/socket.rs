//! The multi-process socket backend: the same transport contract as the
//! in-process fabric, carried over real TCP or Unix-domain stream sockets.
//!
//! One [`SocketBackend`] instance serves one rank — normally one OS
//! process, though tests may host several backends in a single process.
//! Peers form a full mesh of duplex connections; each connection carries
//! [`crate::stream`] envelopes, and the payload of every `Data` envelope is
//! the *same* checksummed, sequence-numbered wire frame
//! ([`crate::wire`]) the in-process fabric exchanges. Ack/retransmit and
//! the seeded [`PerturbPlan`] apply at exactly the same layer as before:
//! the sender perturbs the wire frame (drop / delay / duplicate / reorder /
//! bit-flip), the receiver deduplicates by sequence number, rejects bad
//! checksums, and acks accepted frames; unacked frames retransmit under the
//! plan's [`crate::RetryPolicy`].
//!
//! ## Event loop
//!
//! The workspace builds offline with no `epoll`/`mio` binding, so the
//! "event loop" is the poll-style decomposition of one: a per-connection
//! reader thread blocks in `read` and runs the [`StreamDecoder`]
//! reassembly, a per-connection writer thread drains an outbound queue
//! (senders never write to sockets directly — acks can therefore never
//! deadlock against a full send buffer), and one accept thread services
//! the listener. Connection establishment is deterministic: rank *r* dials
//! every peer with a lower id (retrying with backoff until the connect
//! timeout) and accepts from every higher one, identifying itself with a
//! `Hello` envelope.
//!
//! ## Failure detection: EOF vs. timeout
//!
//! Two independent signals feed the unchanged ULFM revoke → agree → shrink
//! path above:
//!
//! * **EOF / connection reset** — a SIGKILLed process's kernel closes its
//!   sockets; every peer's reader observes it immediately and marks the
//!   rank dead (the fail-stop signal the in-process alive table modeled);
//! * **silence** — a reachable-but-stuck peer trips the same two suspicion
//!   rules as in-process: send-retry exhaustion, or a blocking receive
//!   with no explicit deadline stalling past the suspicion timeout.
//!
//! A suspected rank is additionally sent a best-effort `Die` envelope so
//! that — exactly as with the shared alive table — a suspected process
//! blocked in a receive observes [`TransportError::SelfDied`] rather than
//! hanging on peers that have already written it off.

use crate::backend::{Backend, BackendKind, SignalHandler};
use crate::error::TransportError;
use crate::fabric::{FabricStats, FabricTelemetry};
use crate::fault::FaultInjector;
use crate::ids::{RankId, Topology};
use crate::mailbox::{FrameAck, Mailbox, RecvOutcome};
use crate::perturb::{PerturbPlan, Perturber};
use crate::stream::{encode_envelope, StreamDecoder, StreamEnvelope, StreamKind};
use crate::wire;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Debug tracing for the death/teardown paths, enabled with `SOCK_TRACE=1`.
fn trace(msg: impl FnOnce() -> String) {
    use std::sync::OnceLock;
    static ON: OnceLock<bool> = OnceLock::new();
    if *ON.get_or_init(|| std::env::var("SOCK_TRACE").is_ok()) {
        eprintln!("[sock {:?}] {}", std::time::SystemTime::now(), msg());
    }
}

/// Extra grace added to each ack-wait beyond the retry policy's backoff:
/// unlike the in-process fabric, where delivery is a function call, a
/// loopback round-trip through two service threads has real latency, and
/// without the floor the default 100µs first backoff would retransmit
/// almost every frame.
const ACK_GRACE: Duration = Duration::from_millis(1);

/// How long a freshly-accepted connection gets to present its `Hello`.
const HELLO_TIMEOUT: Duration = Duration::from_secs(10);

/// How long `shutdown` waits for writer threads to flush draining links
/// before force-closing them.
const SHUTDOWN_DRAIN: Duration = Duration::from_millis(500);

/// Backoff between dial attempts while a peer's listener isn't up yet.
const DIAL_RETRY: Duration = Duration::from_millis(10);

/// Dial budget for a join-time `connect_peer` (ticket-time gap filling):
/// the target published its address, so it is either accepting or dead.
const JOIN_DIAL_TIMEOUT: Duration = Duration::from_secs(5);

/// A bound listening socket plus its dialable address string
/// (`tcp:127.0.0.1:PORT` or `unix:/path`). Created by
/// [`SocketBackend::bind`] *before* rendezvous so the address can be
/// published, then consumed by [`SocketBackend::establish`].
pub struct SocketListener {
    inner: ListenerInner,
    addr: String,
}

enum ListenerInner {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

impl SocketListener {
    /// The address peers should dial, e.g. `tcp:127.0.0.1:41234`.
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

/// A duplex stream of either flavor.
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn connect(addr: &str) -> io::Result<Self> {
        if let Some(rest) = addr.strip_prefix("tcp:") {
            let s = TcpStream::connect(rest)?;
            s.set_nodelay(true).ok();
            Ok(Stream::Tcp(s))
        } else if let Some(rest) = addr.strip_prefix("unix:") {
            Ok(Stream::Unix(UnixStream::connect(rest)?))
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("address {addr:?} has no tcp:/unix: prefix"),
            ))
        }
    }

    fn try_clone(&self) -> io::Result<Self> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(t),
            Stream::Unix(s) => s.set_read_timeout(t),
        }
    }

    fn shutdown_both(&self) {
        match self {
            Stream::Tcp(s) => {
                s.shutdown(std::net::Shutdown::Both).ok();
            }
            Stream::Unix(s) => {
                s.shutdown(std::net::Shutdown::Both).ok();
            }
        }
    }

    fn read_bytes(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }

    fn write_all_bytes(&mut self, buf: &[u8]) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.write_all(buf),
            Stream::Unix(s) => s.write_all(buf),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LinkPhase {
    /// Not yet connected.
    Pending,
    /// Connected; reader/writer threads running.
    Up,
    /// Close requested after the outbound queue drains (delivers a final
    /// `Die`/`Bye` before the FIN).
    Draining,
    /// Closed; queue is discarded.
    Closed,
}

struct LinkState {
    phase: LinkPhase,
    queue: VecDeque<Vec<u8>>,
    /// Handle kept for shutdown; the reader/writer threads own clones.
    stream: Option<Stream>,
}

struct Link {
    state: Mutex<LinkState>,
    cv: Condvar,
}

impl Link {
    fn vacant() -> Self {
        Self {
            state: Mutex::new(LinkState {
                phase: LinkPhase::Pending,
                queue: VecDeque::new(),
                stream: None,
            }),
            cv: Condvar::new(),
        }
    }
}

/// Per-peer state: the liveness flag the in-process fabric kept in its
/// shared alive table, plus the link carrying traffic to that peer. Slots
/// are created for the initial world at establish time and appended when a
/// joiner is admitted (or dials in), so the peer table can *grow* while
/// collectives are running — readers hold cheap `Arc` clones and never see
/// a slot disappear.
struct PeerSlot {
    alive: AtomicBool,
    link: Link,
}

impl PeerSlot {
    fn vacant() -> Arc<Self> {
        Arc::new(Self {
            alive: AtomicBool::new(true),
            link: Link::vacant(),
        })
    }
}

/// The socket implementation of [`Backend`]. See the module docs for the
/// threading model and failure-detection semantics.
pub struct SocketBackend {
    rank: RankId,
    topology: Topology,
    kind: BackendKind,
    mailbox: Mailbox,
    /// Growable peer table indexed by rank; see [`PeerSlot`].
    peers: RwLock<Vec<Arc<PeerSlot>>>,
    /// Handle to ourselves for spawning service threads from `&self`
    /// methods (joiner dials arrive through the object-safe [`Backend`]
    /// trait, which has no `Arc<Self>` receiver).
    self_weak: Weak<SocketBackend>,
    injector: FaultInjector,
    perturber: RwLock<Arc<Perturber>>,
    suspicion: RwLock<Option<Duration>>,
    /// Suspicion batching window (see [`Backend::suspicion_batch_window`]).
    suspicion_batch: RwLock<Option<Duration>>,
    /// When the most recent alive→dead suspicion transition was recorded.
    last_suspicion: Mutex<Option<Instant>>,
    tx_seq: Mutex<HashMap<(RankId, u64), u64>>,
    /// Acks received but not yet claimed by a waiting sender.
    acks: Mutex<HashSet<(RankId, u64, u64)>>,
    ack_cv: Condvar,
    signal_handler: RwLock<Option<SignalHandler>>,
    shutting_down: AtomicBool,
    /// Set when this rank dies *abruptly* (scripted fault, a peer's `Die`
    /// verdict) as opposed to a voluntary `kill_self` retirement. Lets a
    /// host process turn simulated hard deaths into real ones.
    hard_died: AtomicBool,
    /// Dialable address of the local listener (for the shutdown self-wake).
    local_addr: String,
    ready_links: AtomicUsize,
    ready_mx: Mutex<()>,
    ready_cv: Condvar,
    messages: AtomicU64,
    bytes: AtomicU64,
    deaths: AtomicU64,
    retransmits: AtomicU64,
    corrupt_frames: AtomicU64,
    dup_suppressed: AtomicU64,
    suspicions: AtomicU64,
    telem: FabricTelemetry,
}

impl SocketBackend {
    /// Bind a listener of the requested kind on an ephemeral local address.
    /// Returns the listener and its dialable address string; publish the
    /// address (e.g. through the rendezvous store), then call
    /// [`SocketBackend::establish`] once every peer's address is known.
    pub fn bind(kind: BackendKind) -> io::Result<SocketListener> {
        static UNIX_SEQ: AtomicU64 = AtomicU64::new(0);
        match kind {
            BackendKind::Tcp => {
                let l = TcpListener::bind("127.0.0.1:0")?;
                let addr = format!("tcp:{}", l.local_addr()?);
                Ok(SocketListener {
                    inner: ListenerInner::Tcp(l),
                    addr,
                })
            }
            BackendKind::Unix => {
                let path = std::env::temp_dir().join(format!(
                    "elfr-{}-{}.sock",
                    std::process::id(),
                    UNIX_SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                // A crashed earlier run may have left the name behind.
                let _ = std::fs::remove_file(&path);
                let l = UnixListener::bind(&path)?;
                let addr = format!("unix:{}", path.display());
                Ok(SocketListener {
                    inner: ListenerInner::Unix(l, path),
                    addr,
                })
            }
            BackendKind::InProc => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "the in-process backend has no listener; use Endpoint::new",
            )),
        }
    }

    /// Shared constructor: a backend with `slots` vacant peer slots (all
    /// initially alive) and its accept thread running on `listener`.
    fn construct(
        rank: RankId,
        topology: Topology,
        slots: usize,
        listener: SocketListener,
        injector: FaultInjector,
    ) -> Arc<Self> {
        let kind = match &listener.inner {
            ListenerInner::Tcp(_) => BackendKind::Tcp,
            ListenerInner::Unix(..) => BackendKind::Unix,
        };
        let backend = Arc::new_cyclic(|weak| SocketBackend {
            rank,
            topology,
            kind,
            mailbox: Mailbox::new(),
            peers: RwLock::new((0..slots).map(|_| PeerSlot::vacant()).collect()),
            self_weak: weak.clone(),
            injector,
            perturber: RwLock::new(Arc::new(Perturber::inert())),
            suspicion: RwLock::new(None),
            suspicion_batch: RwLock::new(None),
            last_suspicion: Mutex::new(None),
            tx_seq: Mutex::new(HashMap::new()),
            acks: Mutex::new(HashSet::new()),
            ack_cv: Condvar::new(),
            signal_handler: RwLock::new(None),
            shutting_down: AtomicBool::new(false),
            hard_died: AtomicBool::new(false),
            local_addr: listener.addr.clone(),
            ready_links: AtomicUsize::new(0),
            ready_mx: Mutex::new(()),
            ready_cv: Condvar::new(),
            messages: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            deaths: AtomicU64::new(0),
            retransmits: AtomicU64::new(0),
            corrupt_frames: AtomicU64::new(0),
            dup_suppressed: AtomicU64::new(0),
            suspicions: AtomicU64::new(0),
            telem: FabricTelemetry::new(),
        });
        {
            let b = Arc::clone(&backend);
            std::thread::Builder::new()
                .name(format!("sock-accept-{rank}"))
                .spawn(move || b.accept_loop(listener))
                .expect("spawn accept thread");
        }
        backend
    }

    /// Establish the full mesh: dial every lower-ranked peer, accept from
    /// every higher-ranked one, and return once all `world - 1` links are
    /// up (or fail after `connect_timeout`).
    ///
    /// `peer_addrs[r]` must be rank `r`'s published address
    /// (`peer_addrs[rank]` is ignored — it is this backend's own listener).
    pub fn establish(
        rank: RankId,
        topology: Topology,
        listener: SocketListener,
        peer_addrs: &[String],
        injector: FaultInjector,
        connect_timeout: Duration,
    ) -> io::Result<Arc<Self>> {
        let world = peer_addrs.len();
        assert!(rank.0 < world, "rank {rank} outside world of {world}");
        let backend = Self::construct(rank, topology, world, listener, injector);

        // Dial every lower-ranked peer (their listeners may not be up yet).
        for (p, addr) in peer_addrs.iter().enumerate().take(rank.0) {
            let deadline = Instant::now() + connect_timeout;
            let mut stream = loop {
                match Stream::connect(addr) {
                    Ok(s) => break s,
                    Err(e) => {
                        if Instant::now() >= deadline {
                            backend.shutdown();
                            return Err(io::Error::new(
                                e.kind(),
                                format!("dialing rank {p} at {addr}: {e}"),
                            ));
                        }
                        std::thread::sleep(DIAL_RETRY);
                    }
                }
            };
            stream.write_all_bytes(&encode_envelope(
                StreamKind::Hello,
                &(rank.0 as u64).to_le_bytes(),
            ))?;
            backend.install_link(RankId(p), stream, StreamDecoder::new());
        }

        // Wait for the full mesh.
        let deadline = Instant::now() + connect_timeout;
        {
            let mut g = backend.ready_mx.lock();
            while backend.ready_links.load(Ordering::SeqCst) < world - 1 {
                let now = Instant::now();
                if now >= deadline {
                    let have = backend.ready_links.load(Ordering::SeqCst);
                    backend.shutdown();
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!(
                            "rank {rank}: only {have}/{} links up within {connect_timeout:?}",
                            world - 1
                        ),
                    ));
                }
                backend.ready_cv.wait_for(&mut g, deadline - now);
            }
        }
        Ok(backend)
    }

    /// Establish a *joiner* backend: a process that arrives after the
    /// initial mesh is up and wants to be admitted through the elastic
    /// join handshake. Unlike [`SocketBackend::establish`], this does not
    /// wait for a full mesh — it dials every published member address in
    /// parallel and succeeds as long as at least one member is reachable
    /// (unreachable members are marked dead locally, exactly as if their
    /// EOF had been observed). Links to members that publish *later*
    /// (e.g. other joiners) are filled in on demand via
    /// [`Backend::connect_peer`] or by accepting their dial.
    pub fn establish_joiner(
        rank: RankId,
        topology: Topology,
        listener: SocketListener,
        peer_addrs: &[(RankId, String)],
        injector: FaultInjector,
        connect_timeout: Duration,
    ) -> io::Result<Arc<Self>> {
        let backend = Self::construct(rank, topology, rank.0 + 1, listener, injector);
        let dials: Vec<_> = peer_addrs
            .iter()
            .filter(|(p, _)| *p != rank)
            .cloned()
            .map(|(p, addr)| {
                let b = Arc::clone(&backend);
                std::thread::Builder::new()
                    .name(format!("sock-dial-{rank}-{p}"))
                    .spawn(move || b.connect_peer_addr(p, &addr, connect_timeout))
                    .expect("spawn dial thread")
            })
            .collect();
        let expected = dials.len();
        let up = dials
            .into_iter()
            .map(|h| h.join())
            .filter(|r| matches!(r, Ok(true)))
            .count();
        if up == 0 && expected > 0 {
            backend.shutdown();
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("joiner rank {rank}: none of {expected} members reachable"),
            ));
        }
        Ok(backend)
    }

    /// Dial `peer` at its published `addr` and install the link. Returns
    /// true once a link to `peer` is up (possibly pre-existing: a crossing
    /// dial from the peer that already installed wins, which is fine —
    /// there is exactly one connection either way). Returns false — and
    /// marks the peer dead, the same verdict an EOF would have produced —
    /// if the peer is already known dead, refuses the connection, or the
    /// timeout expires. A published address with nobody listening means
    /// the process behind it is gone (addresses are only ever published
    /// *after* the listener binds), so refusal fails fast instead of
    /// burning the whole timeout.
    pub fn connect_peer_addr(&self, peer: RankId, addr: &str, timeout: Duration) -> bool {
        if peer == self.rank {
            return true;
        }
        let slot = self.ensure_rank_slot(peer);
        if !slot.alive.load(Ordering::SeqCst) {
            return false;
        }
        if slot.link.state.lock().phase != LinkPhase::Pending {
            return true;
        }
        let deadline = Instant::now() + timeout;
        let mut stream = loop {
            if self.shutting_down.load(Ordering::SeqCst) {
                return false;
            }
            match Stream::connect(addr) {
                Ok(s) => break s,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionRefused | io::ErrorKind::NotFound
                    ) || Instant::now() >= deadline =>
                {
                    trace(|| format!("rank {} dial {peer} at {addr}: {e}", self.rank));
                    self.mark_peer_dead(peer, false);
                    return false;
                }
                Err(_) => std::thread::sleep(DIAL_RETRY),
            }
        };
        if stream
            .write_all_bytes(&encode_envelope(
                StreamKind::Hello,
                &(self.rank.0 as u64).to_le_bytes(),
            ))
            .is_err()
        {
            self.mark_peer_dead(peer, false);
            return false;
        }
        self.install_link(peer, stream, StreamDecoder::new());
        true
    }

    /// Did this rank die abruptly (scripted fault or a peer's `Die`
    /// verdict), as opposed to retiring voluntarily? A multi-process host
    /// can poll this to turn a simulated hard death into a real `SIGKILL`.
    pub fn hard_died(&self) -> bool {
        self.hard_died.load(Ordering::SeqCst)
    }

    /// The dialable address of this backend's listener, as published to
    /// peers (e.g. `tcp:127.0.0.1:PORT`).
    pub fn local_addr(&self) -> &str {
        &self.local_addr
    }

    /// Which flavor of socket this backend runs on.
    pub fn kind(&self) -> BackendKind {
        self.kind
    }

    /// Convenience for tests and single-process socket scenarios: bind and
    /// establish a full mesh of `n` backends inside this process, all
    /// sharing the scripted `injector` plan (each backend only ever fires
    /// its own rank's triggers).
    pub fn local_mesh(
        kind: BackendKind,
        topology: Topology,
        n: usize,
        injector_plan: crate::fault::FaultPlan,
    ) -> io::Result<Vec<Arc<Self>>> {
        let listeners = (0..n)
            .map(|_| Self::bind(kind))
            .collect::<io::Result<Vec<_>>>()?;
        let addrs: Vec<String> = listeners.iter().map(|l| l.addr().to_string()).collect();
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(r, listener)| {
                let addrs = addrs.clone();
                let plan = injector_plan.clone();
                std::thread::spawn(move || {
                    Self::establish(
                        RankId(r),
                        topology,
                        listener,
                        &addrs,
                        FaultInjector::new(plan),
                        Duration::from_secs(20),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("mesh establish thread panicked"))
            .collect()
    }

    // ---- peer table -----------------------------------------------------

    fn slot(&self, rank: RankId) -> Option<Arc<PeerSlot>> {
        self.peers.read().get(rank.0).cloned()
    }

    /// Grow the peer table so `rank` has a slot (new slots are alive with a
    /// pending, buffering link). Idempotent; existing slots are untouched.
    fn ensure_rank_slot(&self, rank: RankId) -> Arc<PeerSlot> {
        if let Some(slot) = self.slot(rank) {
            return slot;
        }
        let mut peers = self.peers.write();
        while peers.len() <= rank.0 {
            peers.push(PeerSlot::vacant());
        }
        Arc::clone(&peers[rank.0])
    }

    fn peers_snapshot(&self) -> Vec<Arc<PeerSlot>> {
        self.peers.read().clone()
    }

    fn known_dead(&self, rank: RankId) -> bool {
        self.slot(rank)
            .is_some_and(|s| !s.alive.load(Ordering::SeqCst))
    }

    // ---- connection service threads -------------------------------------

    fn accept_loop(self: Arc<Self>, listener: SocketListener) {
        loop {
            let stream = match &listener.inner {
                ListenerInner::Tcp(l) => l.accept().map(|(s, _)| {
                    s.set_nodelay(true).ok();
                    Stream::Tcp(s)
                }),
                ListenerInner::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
            };
            if self.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let Ok(mut stream) = stream else {
                if self.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            };
            // Handshake: the dialer identifies itself first. The decoder
            // comes back with it: a fast dialer's first data frames may
            // already be coalesced behind the Hello, and dropping them
            // would desync the stream.
            // Any rank may dial in — including one beyond the current
            // world, i.e. a joiner — but a rank we already saw die stays
            // dead (failure knowledge only grows).
            match self.read_hello(&mut stream) {
                Some((peer, dec)) if peer != self.rank && !self.known_dead(peer) => {
                    self.install_link(peer, stream, dec);
                }
                _ => {
                    stream.shutdown_both();
                }
            }
        }
        if let ListenerInner::Unix(_, path) = &listener.inner {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Read the dialer's Hello. Returns the peer's rank together with the
    /// decoder, which may already hold bytes read past the Hello (the
    /// dialer is free to start sending the moment its side of the link is
    /// up); the reader loop continues from exactly that state.
    fn read_hello(&self, stream: &mut Stream) -> Option<(RankId, StreamDecoder)> {
        stream.set_read_timeout(Some(HELLO_TIMEOUT)).ok()?;
        let mut dec = StreamDecoder::new();
        let mut buf = [0u8; 256];
        let env = loop {
            match dec.next_envelope() {
                Ok(Some(env)) => break env,
                Ok(None) => {}
                Err(_) => return None,
            }
            let n = stream.read_bytes(&mut buf).ok()?;
            if n == 0 {
                return None;
            }
            dec.push(&buf[..n]);
        };
        stream.set_read_timeout(None).ok()?;
        if env.kind != StreamKind::Hello || env.payload.len() != 8 {
            return None;
        }
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&env.payload);
        Some((RankId(u64::from_le_bytes(raw) as usize), dec))
    }

    fn install_link(&self, peer: RankId, stream: Stream, dec: StreamDecoder) {
        let Some(this) = self.self_weak.upgrade() else {
            stream.shutdown_both();
            return;
        };
        let reader = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                stream.shutdown_both();
                return;
            }
        };
        let writer = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                stream.shutdown_both();
                return;
            }
        };
        let slot = self.ensure_rank_slot(peer);
        {
            let mut st = slot.link.state.lock();
            if st.phase != LinkPhase::Pending {
                // Duplicate or late connection; keep the first.
                stream.shutdown_both();
                return;
            }
            st.phase = LinkPhase::Up;
            st.stream = Some(stream);
        }
        {
            let b = Arc::clone(&this);
            std::thread::Builder::new()
                .name(format!("sock-rd-{}-{peer}", self.rank))
                .spawn(move || b.reader_loop(peer, reader, dec))
                .expect("spawn reader thread");
        }
        {
            let b = this;
            std::thread::Builder::new()
                .name(format!("sock-wr-{}-{peer}", self.rank))
                .spawn(move || b.writer_loop(peer, writer))
                .expect("spawn writer thread");
        }
        self.ready_links.fetch_add(1, Ordering::SeqCst);
        let _g = self.ready_mx.lock();
        self.ready_cv.notify_all();
    }

    fn reader_loop(self: Arc<Self>, peer: RankId, mut stream: Stream, mut dec: StreamDecoder) {
        let mut buf = vec![0u8; 64 * 1024];
        'conn: loop {
            // Drain before reading: the handshake may have handed us a
            // decoder that already holds complete frames.
            loop {
                match dec.next_envelope() {
                    Ok(Some(env)) => {
                        if !self.handle_envelope(peer, env) {
                            return;
                        }
                    }
                    Ok(None) => break,
                    // Desynchronized stream: unrecoverable for this
                    // connection; treat like a reset.
                    Err(_) => break 'conn,
                }
            }
            match stream.read_bytes(&mut buf) {
                Ok(0) => break 'conn,
                Ok(n) => dec.push(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break 'conn,
            }
        }
        self.on_conn_lost(peer);
    }

    fn writer_loop(self: Arc<Self>, peer: RankId, mut stream: Stream) {
        let Some(slot) = self.slot(peer) else { return };
        loop {
            let (item, drain_done) = {
                let link = &slot.link;
                let mut st = link.state.lock();
                loop {
                    if let Some(item) = st.queue.pop_front() {
                        break (Some(item), false);
                    }
                    match st.phase {
                        LinkPhase::Closed => break (None, false),
                        LinkPhase::Draining => break (None, true),
                        _ => link.cv.wait(&mut st),
                    }
                }
            };
            match item {
                Some(bytes) => {
                    if stream.write_all_bytes(&bytes).is_err() {
                        // Connection is gone; the reader observes it too.
                        self.close_link(peer, false);
                        return;
                    }
                }
                None => {
                    if drain_done {
                        // Final envelope flushed: now actually close.
                        self.close_link(peer, false);
                    }
                    return;
                }
            }
        }
    }

    /// The connection to `peer` dropped (EOF, reset, or desync). Outside of
    /// our own teardown this *is* the fail-stop failure signal.
    fn on_conn_lost(&self, peer: RankId) {
        self.close_link(peer, false);
        if self.shutting_down.load(Ordering::SeqCst) || !self.alive_local(self.rank) {
            return;
        }
        trace(|| format!("rank {} conn lost to {peer}", self.rank));
        self.mark_peer_dead(peer, false);
    }

    fn close_link(&self, peer: RankId, drain_first: bool) {
        let Some(slot) = self.slot(peer) else { return };
        let link = &slot.link;
        let mut st = link.state.lock();
        match st.phase {
            LinkPhase::Closed => return,
            LinkPhase::Draining if drain_first => return,
            _ => {}
        }
        if drain_first && st.phase == LinkPhase::Up {
            st.phase = LinkPhase::Draining;
        } else {
            st.phase = LinkPhase::Closed;
            st.queue.clear();
            if let Some(s) = st.stream.take() {
                s.shutdown_both();
            }
        }
        link.cv.notify_all();
    }

    /// Queue an envelope for `peer`. Returns false if the link is closing
    /// or closed. A *pending* link buffers: a committed joiner's link may
    /// still be dialing in, and the writer thread drains the queue the
    /// moment the link installs — so sends to a freshly-admitted rank
    /// retry against a real queue rather than failing outright.
    fn enqueue(&self, peer: RankId, bytes: Vec<u8>) -> bool {
        let Some(slot) = self.slot(peer) else {
            return false;
        };
        let link = &slot.link;
        let mut st = link.state.lock();
        match st.phase {
            LinkPhase::Up | LinkPhase::Pending => {
                st.queue.push_back(bytes);
                link.cv.notify_all();
                true
            }
            LinkPhase::Draining | LinkPhase::Closed => false,
        }
    }

    fn handle_envelope(&self, peer: RankId, env: StreamEnvelope) -> bool {
        match env.kind {
            StreamKind::Data => {
                match wire::decode_frame(&env.payload) {
                    Err(_) => {
                        // Bit-flipped by the perturbation plan: discard
                        // without acking; the sender retransmits.
                        self.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                        self.telem.corrupt_frames.incr();
                    }
                    Ok(frame) => {
                        // Ack BEFORE delivering to the mailbox: delivery can
                        // wake the engine thread, which may complete its last
                        // collective and retire — moving this link out of
                        // `Up` — before we get another chance to enqueue.
                        // Acking first keeps the ack FIFO-ordered ahead of
                        // any Bye that the delivery itself triggers. A
                        // validated frame is always held (duplicates ack
                        // too), so the early ack never lies.
                        let mut payload = Vec::with_capacity(16);
                        payload.extend_from_slice(&frame.tag.to_le_bytes());
                        payload.extend_from_slice(&frame.seq.to_le_bytes());
                        self.enqueue(peer, encode_envelope(StreamKind::Ack, &payload));
                        match self.mailbox.accept_frame(&env.payload) {
                            FrameAck::Corrupt(_) => {
                                // Unreachable: decode_frame above already
                                // validated the same bytes.
                                self.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                                self.telem.corrupt_frames.incr();
                            }
                            FrameAck::Duplicate => {
                                self.dup_suppressed.fetch_add(1, Ordering::Relaxed);
                                self.telem.dup_suppressed.incr();
                            }
                            FrameAck::Accepted => {}
                        }
                    }
                }
                true
            }
            StreamKind::Ack => {
                if env.payload.len() == 16 {
                    let mut tag = [0u8; 8];
                    let mut seq = [0u8; 8];
                    tag.copy_from_slice(&env.payload[..8]);
                    seq.copy_from_slice(&env.payload[8..]);
                    let mut acks = self.acks.lock();
                    if acks.len() > 100_000 {
                        // Redundant acks (duplicates of frames whose sender
                        // already moved on) are never claimed; dropping them
                        // can at worst cause one extra retransmit.
                        acks.clear();
                    }
                    acks.insert((peer, u64::from_le_bytes(tag), u64::from_le_bytes(seq)));
                    self.ack_cv.notify_all();
                }
                true
            }
            StreamKind::Signal => {
                if let Some(h) = self.signal_handler.read().as_ref() {
                    h(&env.payload);
                }
                true
            }
            StreamKind::Die => {
                // A peer suspected us dead. Honor the verdict (ULFM's
                // failure knowledge only grows): observe our own death and
                // go dark so the rest of the world converges on it too.
                trace(|| format!("rank {} got Die from {peer}", self.rank));
                self.die_abruptly();
                false
            }
            StreamKind::Bye => {
                trace(|| format!("rank {} got Bye from {peer}", self.rank));
                self.mark_peer_dead(peer, false);
                false
            }
            StreamKind::Hello => {
                // A Hello after the handshake means the stream is confused.
                self.on_conn_lost(peer);
                false
            }
        }
    }

    // ---- liveness -------------------------------------------------------

    fn alive_local(&self, rank: RankId) -> bool {
        self.slot(rank)
            .is_some_and(|s| s.alive.load(Ordering::SeqCst))
    }

    /// Mark `peer` dead in the local view and wake every blocked local
    /// waiter. With `send_die`, a final `Die` envelope is flushed to the
    /// peer before its link closes (the suspicion path); otherwise the link
    /// is torn down immediately (the EOF path).
    fn mark_peer_dead(&self, peer: RankId, send_die: bool) {
        let Some(slot) = self.slot(peer) else { return };
        if slot.alive.swap(false, Ordering::SeqCst) {
            self.deaths.fetch_add(1, Ordering::Relaxed);
            self.telem.deaths.incr();
            if send_die {
                self.enqueue(peer, encode_envelope(StreamKind::Die, b""));
            }
            self.close_link(peer, send_die);
            self.wake_local();
        }
    }

    /// Scripted or signaled self-death: go dark abruptly, like a crash —
    /// no goodbyes, peers learn from the EOF.
    fn die_abruptly(&self) {
        self.hard_died.store(true, Ordering::SeqCst);
        let Some(me) = self.slot(self.rank) else {
            return;
        };
        if me.alive.swap(false, Ordering::SeqCst) {
            self.deaths.fetch_add(1, Ordering::Relaxed);
            self.telem.deaths.incr();
            for p in 0..self.peers_snapshot().len() {
                if p != self.rank.0 {
                    self.close_link(RankId(p), false);
                }
            }
            self.wake_local();
        }
    }

    fn wake_local(&self) {
        self.mailbox.wake_waiters();
        let _g = self.acks.lock();
        self.ack_cv.notify_all();
        let _r = self.ready_mx.lock();
        self.ready_cv.notify_all();
    }

    /// Wait until the receiver acks `(to, tag, seq)`, a liveness change
    /// interrupts the wait, or `timeout` elapses. True iff acked.
    fn wait_ack(&self, to: RankId, tag: u64, seq: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut acks = self.acks.lock();
        loop {
            if acks.remove(&(to, tag, seq)) {
                return true;
            }
            if !self.alive_local(to) || !self.alive_local(self.rank) {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return acks.remove(&(to, tag, seq));
            }
            self.ack_cv.wait_for(&mut acks, deadline - now);
        }
    }

    fn next_tx_seq(&self, dst: RankId, tag: u64) -> u64 {
        let mut seqs = self.tx_seq.lock();
        let s = seqs.entry((dst, tag)).or_insert(0);
        let seq = *s;
        *s += 1;
        seq
    }
}

impl Backend for SocketBackend {
    fn rank(&self) -> RankId {
        self.rank
    }

    fn topology(&self) -> Topology {
        self.topology
    }

    fn total_ranks(&self) -> usize {
        self.peers.read().len()
    }

    fn is_alive(&self, rank: RankId) -> bool {
        self.alive_local(rank)
    }

    fn alive_ranks(&self) -> Vec<RankId> {
        self.peers_snapshot()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive.load(Ordering::SeqCst))
            .map(|(r, _)| RankId(r))
            .collect()
    }

    fn expect_rank(&self, rank: RankId) {
        self.ensure_rank_slot(rank);
    }

    fn connect_peer(&self, rank: RankId, addr: &str) -> bool {
        self.connect_peer_addr(rank, addr, JOIN_DIAL_TIMEOUT)
    }

    fn suspect(&self, rank: RankId) {
        if rank == self.rank {
            self.die_abruptly();
            return;
        }
        if self.alive_local(rank) {
            self.suspicions.fetch_add(1, Ordering::Relaxed);
            self.telem.suspicions.incr();
            *self.last_suspicion.lock() = Some(Instant::now());
            // Tell the suspect: the in-process alive table made a suspected
            // rank observe its own death; over sockets the Die envelope
            // carries that verdict (best effort — a truly dead process
            // simply won't read it).
            self.mark_peer_dead(rank, true);
        } else {
            // Re-suspicion of a known-dead peer: part of the same burst,
            // coalesced instead of fanning out another revoke.
            self.telem.suspicion_coalesced.incr();
        }
    }

    fn kill_self(&self) {
        // Voluntary, clean departure: flush a Bye on every live link so
        // peers record the death without an error-path teardown.
        trace(|| format!("rank {} kill_self", self.rank));
        let Some(me) = self.slot(self.rank) else {
            return;
        };
        if me.alive.swap(false, Ordering::SeqCst) {
            self.deaths.fetch_add(1, Ordering::Relaxed);
            self.telem.deaths.incr();
            for p in 0..self.peers_snapshot().len() {
                if p != self.rank.0 {
                    self.enqueue(RankId(p), encode_envelope(StreamKind::Bye, b""));
                    self.close_link(RankId(p), true);
                }
            }
            self.wake_local();
        }
    }

    fn wake_all(&self) {
        self.wake_local();
    }

    fn check_op_fault(&self) -> Result<(), TransportError> {
        if !self.alive_local(self.rank) {
            return Err(TransportError::SelfDied);
        }
        if self.injector.hit_op(self.rank) {
            self.telem.op_fault_hits.incr();
            self.die_abruptly();
            return Err(TransportError::SelfDied);
        }
        Ok(())
    }

    fn fault_point(&self, name: &str) -> Result<(), TransportError> {
        if !self.alive_local(self.rank) {
            return Err(TransportError::SelfDied);
        }
        self.perturber.read().notify_point(name);
        if self.injector.hit_point(self.rank, name) {
            self.telem.fault_point_hits.incr();
            self.die_abruptly();
            return Err(TransportError::SelfDied);
        }
        Ok(())
    }

    fn send(&self, to: RankId, tag: u64, data: &[u8]) -> Result<(), TransportError> {
        self.check_op_fault()?;
        if self.slot(to).is_none() {
            return Err(TransportError::UnknownRank(to));
        }
        if !self.alive_local(to) {
            return Err(TransportError::PeerDead(to));
        }
        let seq = self.next_tx_seq(to, tag);
        let frame = wire::encode_frame(self.rank, tag, seq, data);
        if to == self.rank {
            // Loopback: no socket, no perturbation — as with the fabric,
            // a rank's path to itself is its own mailbox.
            self.mailbox.accept_frame(&frame);
        } else {
            let policy = self.perturber.read().plan().retry_policy();
            let mut attempt = 0u32;
            loop {
                let perturber = Arc::clone(&self.perturber.read());
                let verdict = perturber.transmit(self.rank, to, &frame);
                if verdict.dropped {
                    self.telem.frames_dropped.incr();
                }
                if verdict.duplicated {
                    self.telem.frames_duplicated.incr();
                }
                if verdict.reordered {
                    self.telem.frames_reordered.incr();
                }
                for d in verdict.deliveries {
                    if let Some(delay) = d.delay {
                        // Propagation delay runs on the sender thread, like
                        // the in-process fabric's slow-call links.
                        self.telem.frames_delayed.incr();
                        self.telem.delay_hist.record_duration(delay);
                        std::thread::sleep(delay);
                    }
                    self.enqueue(to, encode_envelope(StreamKind::Data, &d.bytes));
                }
                let salt = perturber.backoff_salt(self.rank, to, tag, seq, attempt);
                let backoff = policy.backoff(attempt, salt);
                if self.wait_ack(to, tag, seq, backoff + ACK_GRACE) {
                    break;
                }
                if !self.alive_local(self.rank) {
                    return Err(TransportError::SelfDied);
                }
                if !self.alive_local(to) {
                    trace(|| {
                        format!(
                            "rank {} send to {to} tag {tag} seq {seq} attempt {attempt}: peer dead",
                            self.rank
                        )
                    });
                    return Err(TransportError::PeerDead(to));
                }
                if attempt >= policy.max_retries {
                    // Silent past the retry budget: suspect the peer,
                    // feeding the ULFM revoke → agree → shrink path.
                    self.suspect(to);
                    return Err(TransportError::PeerDead(to));
                }
                self.telem.backoff_hist.record_duration(backoff);
                attempt += 1;
                self.retransmits.fetch_add(1, Ordering::Relaxed);
                self.telem.retransmits.incr();
            }
        }
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.telem.msgs_sent.incr();
        self.telem.bytes_sent.add(data.len() as u64);
        Ok(())
    }

    fn recv(
        &self,
        from: RankId,
        tag: u64,
        should_stop: &dyn Fn() -> bool,
        deadline: Option<Instant>,
    ) -> Result<Vec<u8>, TransportError> {
        self.check_op_fault()?;
        if self.slot(from).is_none() {
            return Err(TransportError::UnknownRank(from));
        }
        // Same two-tier rule as the in-process fabric: an explicit deadline
        // is the caller's own timeout; an open-ended wait is bounded by the
        // suspicion timeout when one is configured — with the same
        // deterministic per-rank jitter desynchronizing node-level bursts.
        let suspicion = match deadline {
            Some(_) => None,
            None => self
                .suspicion
                .read()
                .map(|t| crate::fabric::suspicion_jitter(self.rank, t)),
        };
        let effective = deadline.or_else(|| suspicion.map(|t| Instant::now() + t));
        match self.mailbox.pop_matching(
            from,
            tag,
            || self.alive_local(from),
            || self.alive_local(self.rank),
            should_stop,
            effective,
        ) {
            RecvOutcome::Message(data) => {
                self.telem.msgs_recvd.incr();
                self.telem.bytes_recvd.add(data.len() as u64);
                Ok(data)
            }
            RecvOutcome::SrcDead => {
                trace(|| format!("rank {} recv from {from} tag {tag}: src dead", self.rank));
                Err(TransportError::PeerDead(from))
            }
            RecvOutcome::SelfDead => Err(TransportError::SelfDied),
            RecvOutcome::Stopped => Err(TransportError::Stopped),
            RecvOutcome::TimedOut => {
                if suspicion.is_some() {
                    self.suspect(from);
                    return Err(TransportError::PeerDead(from));
                }
                self.telem.recv_timeouts.incr();
                Err(TransportError::Timeout)
            }
        }
    }

    fn try_recv(&self, from: RankId, tag: u64) -> Option<Vec<u8>> {
        self.mailbox.try_pop(from, tag)
    }

    fn probe(&self, from: RankId, tag: u64) -> bool {
        self.mailbox.probe(from, tag)
    }

    fn purge_tags(&self, pred: &dyn Fn(u64) -> bool) -> usize {
        let purged = self.mailbox.purge_where(pred);
        self.telem.purged_msgs.add(purged as u64);
        purged
    }

    fn set_perturbation(&self, plan: PerturbPlan) {
        *self.perturber.write() = Arc::new(Perturber::new(plan));
    }

    fn set_suspicion_timeout(&self, timeout: Option<Duration>) {
        *self.suspicion.write() = timeout;
    }

    fn suspicion_timeout(&self) -> Option<Duration> {
        *self.suspicion.read()
    }

    fn last_suspicion(&self) -> Option<Instant> {
        *self.last_suspicion.lock()
    }

    fn suspicion_batch_window(&self) -> Option<Duration> {
        *self.suspicion_batch.read()
    }

    fn set_suspicion_batch_window(&self, window: Option<Duration>) {
        *self.suspicion_batch.write() = window;
    }

    fn broadcast_signal(&self, payload: &[u8]) {
        for (p, slot) in self.peers_snapshot().iter().enumerate() {
            if p != self.rank.0 && slot.alive.load(Ordering::SeqCst) {
                self.enqueue(RankId(p), encode_envelope(StreamKind::Signal, payload));
            }
        }
    }

    fn set_signal_handler(&self, handler: SignalHandler) {
        *self.signal_handler.write() = Some(handler);
    }

    fn stats(&self) -> FabricStats {
        FabricStats {
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            deaths: self.deaths.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            corrupt_frames: self.corrupt_frames.load(Ordering::Relaxed),
            dup_suppressed: self.dup_suppressed.load(Ordering::Relaxed),
            suspicions: self.suspicions.load(Ordering::Relaxed),
        }
    }

    fn shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Drain first: a link may still hold undelivered control traffic —
        // the final ack and the Bye that `kill_self` enqueued moments ago.
        // Closing abruptly here would clear those queues before the writer
        // thread ever got scheduled, so peers would see a raw EOF mid-op
        // instead of an acked, clean goodbye.
        let snapshot = self.peers_snapshot();
        for p in 0..snapshot.len() {
            if p != self.rank.0 {
                self.close_link(RankId(p), true);
            }
        }
        let deadline = Instant::now() + SHUTDOWN_DRAIN;
        while Instant::now() < deadline
            && snapshot
                .iter()
                .enumerate()
                .any(|(p, s)| p != self.rank.0 && s.link.state.lock().phase == LinkPhase::Draining)
        {
            std::thread::sleep(Duration::from_millis(1));
        }
        for p in 0..snapshot.len() {
            if p != self.rank.0 {
                self.close_link(RankId(p), false);
            }
        }
        // Unblock the accept thread: it re-checks the flag after every
        // accept, so one dummy connection to ourselves releases it.
        let _ = Stream::connect(&self.local_addr);
        // The accept thread also unlinks on exit, but it may still be
        // blocked in a handshake; unlink here so teardown is prompt.
        if let Some(path) = self.local_addr.strip_prefix("unix:") {
            let _ = std::fs::remove_file(path);
        }
        self.wake_local();
    }
}

impl Drop for SocketBackend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Endpoint;
    use crate::fault::FaultPlan;
    use crate::perturb::{LinkPerturb, RetryPolicy};

    fn mesh(kind: BackendKind, n: usize) -> Vec<Endpoint> {
        SocketBackend::local_mesh(kind, Topology::flat(), n, FaultPlan::none())
            .expect("mesh")
            .into_iter()
            .map(|b| Endpoint::from_backend(b as Arc<dyn Backend>))
            .collect()
    }

    /// Service threads hold backend Arcs, so teardown is explicit.
    fn teardown(eps: &[Endpoint]) {
        for ep in eps {
            ep.backend().shutdown();
        }
    }

    #[test]
    fn tcp_roundtrip() {
        let eps = mesh(BackendKind::Tcp, 2);
        eps[0].send(RankId(1), 9, b"over tcp").unwrap();
        assert_eq!(eps[1].recv(RankId(0), 9).unwrap(), b"over tcp");
        teardown(&eps);
    }

    #[test]
    fn unix_roundtrip() {
        let eps = mesh(BackendKind::Unix, 2);
        eps[1].send(RankId(0), 4, b"over uds").unwrap();
        assert_eq!(eps[0].recv(RankId(1), 4).unwrap(), b"over uds");
        teardown(&eps);
    }

    #[test]
    fn three_rank_mesh_full_exchange() {
        let eps = mesh(BackendKind::Tcp, 3);
        for (i, ep) in eps.iter().enumerate() {
            for j in 0..3 {
                if i != j {
                    ep.send(RankId(j), 7, format!("{i}->{j}").as_bytes())
                        .unwrap();
                }
            }
        }
        for (j, ep) in eps.iter().enumerate() {
            for i in 0..3 {
                if i != j {
                    assert_eq!(
                        ep.recv(RankId(i), 7).unwrap(),
                        format!("{i}->{j}").as_bytes()
                    );
                }
            }
        }
        teardown(&eps);
    }

    #[test]
    fn retire_is_seen_as_peer_death() {
        let eps = mesh(BackendKind::Unix, 2);
        eps[1].send(RankId(0), 2, b"last words").unwrap();
        eps[1].retire();
        // Buffered message first, then the failure.
        assert_eq!(eps[0].recv(RankId(1), 2).unwrap(), b"last words");
        assert_eq!(
            eps[0].recv(RankId(1), 2),
            Err(TransportError::PeerDead(RankId(1)))
        );
        teardown(&eps);
    }

    #[test]
    fn lossy_socket_link_heals_via_retransmission() {
        let backends =
            SocketBackend::local_mesh(BackendKind::Tcp, Topology::flat(), 2, FaultPlan::none())
                .unwrap();
        let plan = PerturbPlan::seeded(11)
            .all_links(LinkPerturb::clean().drop(0.4).duplicate(0.2).corrupt(0.2))
            .retry(RetryPolicy {
                max_retries: 32,
                base: Duration::from_micros(200),
                cap: Duration::from_millis(2),
            });
        for b in &backends {
            b.set_perturbation(plan.clone());
        }
        let eps: Vec<Endpoint> = backends
            .iter()
            .map(|b| Endpoint::from_backend(Arc::clone(b) as Arc<dyn Backend>))
            .collect();
        for i in 0..50u64 {
            eps[0].send(RankId(1), 9, &i.to_le_bytes()).unwrap();
        }
        for i in 0..50u64 {
            assert_eq!(eps[1].recv(RankId(0), 9).unwrap(), i.to_le_bytes());
        }
        let tx = backends[0].stats();
        let rx = backends[1].stats();
        assert_eq!(tx.messages, 50);
        assert!(
            tx.retransmits > 0 || rx.dup_suppressed > 0,
            "a 40% drop rate must force link-layer repair"
        );
        teardown(&eps);
    }

    #[test]
    fn suspected_socket_rank_observes_own_death() {
        let eps = mesh(BackendKind::Tcp, 3);
        eps[0].set_suspicion_timeout(Some(Duration::from_millis(30)));
        // Rank 1 blocks on a channel nobody serves; rank 0 gives up on it.
        let e1 = eps[1].clone();
        let t = std::thread::spawn(move || e1.recv(RankId(2), 99));
        assert_eq!(
            eps[0].recv(RankId(1), 3),
            Err(TransportError::PeerDead(RankId(1)))
        );
        // The Die envelope makes the suspect observe its own death.
        assert_eq!(t.join().unwrap(), Err(TransportError::SelfDied));
        teardown(&eps);
    }

    #[test]
    fn scripted_death_goes_dark_and_peers_see_eof() {
        let plan = FaultPlan::none().kill_at_point(RankId(1), "allreduce.step", 1);
        let backends =
            SocketBackend::local_mesh(BackendKind::Unix, Topology::flat(), 2, plan).unwrap();
        let eps: Vec<Endpoint> = backends
            .iter()
            .map(|b| Endpoint::from_backend(Arc::clone(b) as Arc<dyn Backend>))
            .collect();
        assert_eq!(
            eps[1].fault_point("allreduce.step"),
            Err(TransportError::SelfDied)
        );
        // No suspicion timeout configured: the EOF alone must inform rank 0.
        let deadline = Instant::now() + Duration::from_secs(5);
        while eps[0].is_peer_alive(RankId(1)) {
            assert!(Instant::now() < deadline, "EOF never observed");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(
            eps[0].recv(RankId(1), 0),
            Err(TransportError::PeerDead(RankId(1)))
        );
        teardown(&eps);
    }

    #[test]
    fn signals_reach_all_peers() {
        use std::sync::atomic::AtomicU64;
        let eps = mesh(BackendKind::Tcp, 3);
        let hits = Arc::new(AtomicU64::new(0));
        for ep in &eps[1..] {
            let hits = Arc::clone(&hits);
            ep.set_signal_handler(Box::new(move |payload| {
                assert_eq!(payload, b"revoke:7");
                hits.fetch_add(1, Ordering::SeqCst);
            }));
        }
        eps[0].broadcast_signal(b"revoke:7");
        let deadline = Instant::now() + Duration::from_secs(5);
        while hits.load(Ordering::SeqCst) < 2 {
            assert!(Instant::now() < deadline, "signals not delivered");
            std::thread::sleep(Duration::from_millis(2));
        }
        teardown(&eps);
    }
}
