//! The transport backend abstraction.
//!
//! Everything above the transport (collectives, ULFM, the elastic engines)
//! talks to an [`Endpoint`]. An endpoint is a thin handle over a
//! [`Backend`]: the object that actually moves framed bytes between ranks,
//! tracks liveness, and applies the fault/perturbation plans. Two backends
//! exist:
//!
//! * the in-process mailbox fabric (threads-as-ranks; see [`crate::Fabric`])
//!   — the seed transport, still the tier-1 default;
//! * the socket backend (one OS process per rank over TCP or Unix-domain
//!   stream sockets; see [`crate::SocketBackend`]).
//!
//! The contract both must honor is the ULFM-flavored per-operation error
//! model pinned by the backend-generic conformance suite
//! (`tests/tests/transport_conformance.rs`):
//!
//! * FIFO delivery per (sender, receiver, tag) channel;
//! * checksummed frames, duplicate suppression, bounded retransmission
//!   under the installed [`crate::RetryPolicy`];
//! * send retry exhaustion and a stalled no-deadline receive past the
//!   suspicion timeout *suspect* the silent peer (report
//!   [`TransportError::PeerDead`]); an explicit receive deadline merely
//!   times out;
//! * a suspected rank blocked in a receive observes
//!   [`TransportError::SelfDied`], never a hang.

use crate::error::TransportError;
use crate::fabric::{Fabric, FabricStats, InProcBackend};
use crate::ids::{NodeId, RankId, Topology};
use crate::perturb::PerturbPlan;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Handler invoked for every control-plane signal broadcast by a peer
/// (see [`Backend::broadcast_signal`]).
pub type SignalHandler = Box<dyn Fn(&[u8]) + Send + Sync>;

/// Which transport backend to run on. Carried by scenario configs and the
/// conformance suite; [`BackendKind::InProc`] is the tier-1 default.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// Threads-as-ranks over shared-memory mailboxes (the seed transport).
    InProc,
    /// One endpoint per rank over loopback TCP stream sockets.
    Tcp,
    /// One endpoint per rank over Unix-domain stream sockets.
    Unix,
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendKind::InProc => write!(f, "inproc"),
            BackendKind::Tcp => write!(f, "tcp"),
            BackendKind::Unix => write!(f, "unix"),
        }
    }
}

/// One rank's view of the transport: framed send/receive, liveness and
/// suspicion signaling, fault injection, and teardown.
///
/// A backend instance serves exactly one local rank. Implementations must
/// be cheap to share behind an `Arc` and safe to call from multiple threads
/// (collectives issue sends and receives concurrently with wakeups).
pub trait Backend: Send + Sync {
    /// The local rank this backend serves.
    fn rank(&self) -> RankId;

    /// The node topology of the job.
    fn topology(&self) -> Topology;

    /// Total ranks ever part of the job (alive or dead).
    fn total_ranks(&self) -> usize;

    /// Is `rank` known and currently believed alive?
    fn is_alive(&self, rank: RankId) -> bool;

    /// Snapshot of ranks currently believed alive, in id order.
    fn alive_ranks(&self) -> Vec<RankId>;

    /// Declare `rank` dead on suspicion (idempotent). Implementations must
    /// also make the suspected rank itself observe its death if it is
    /// blocked in a receive — in-process via the shared alive table, over
    /// sockets via a control frame.
    fn suspect(&self, rank: RankId);

    /// Mark the local rank dead and release every peer blocked on it
    /// (clean voluntary departure; peers observe `PeerDead` after draining
    /// buffered messages).
    fn kill_self(&self);

    /// Wake every blocked receiver *reachable from this backend* so it
    /// re-checks liveness and stop conditions. In-process this wakes all
    /// ranks; a socket backend wakes only its own mailbox (peers are woken
    /// by their own backends, driven by control signals).
    fn wake_all(&self);

    /// Check the scripted fault plan at a transport operation; on a hit the
    /// local rank dies and `Err(SelfDied)` is returned.
    fn check_op_fault(&self) -> Result<(), TransportError>;

    /// Named protocol-level fault point (e.g. `"allreduce.step"`); also
    /// activates gated perturbation plans.
    fn fault_point(&self, name: &str) -> Result<(), TransportError>;

    /// Reliable framed send: checksummed, sequence-numbered, retransmitted
    /// under the retry policy until acknowledged; exhaustion suspects the
    /// peer.
    fn send(&self, to: RankId, tag: u64, data: &[u8]) -> Result<(), TransportError>;

    /// Blocking matched receive. `deadline` is the caller's *explicit*
    /// deadline (expiry returns [`TransportError::Timeout`] without
    /// suspicion); with no deadline, the configured suspicion timeout
    /// bounds the wait and a stall suspects the silent peer instead.
    /// `should_stop` interrupts the wait with [`TransportError::Stopped`].
    fn recv(
        &self,
        from: RankId,
        tag: u64,
        should_stop: &dyn Fn() -> bool,
        deadline: Option<Instant>,
    ) -> Result<Vec<u8>, TransportError>;

    /// Non-blocking receive.
    fn try_recv(&self, from: RankId, tag: u64) -> Option<Vec<u8>>;

    /// Is a message from `(from, tag)` buffered?
    fn probe(&self, from: RankId, tag: u64) -> bool;

    /// Drop buffered messages whose tag matches `pred`; returns the count.
    fn purge_tags(&self, pred: &dyn Fn(u64) -> bool) -> usize;

    /// Install a link-perturbation plan (replaces any previous one).
    fn set_perturbation(&self, plan: PerturbPlan);

    /// Enable (`Some`) or disable (`None`) timeout-based failure suspicion
    /// for receives without an explicit deadline.
    fn set_suspicion_timeout(&self, timeout: Option<Duration>);

    /// The configured suspicion timeout, if any.
    fn suspicion_timeout(&self) -> Option<Duration>;

    /// Best-effort control-plane broadcast to every peer (out-of-band with
    /// respect to tag matching). Used by the ULFM layer to propagate
    /// communicator revocations between processes. The in-process backend
    /// is a no-op: its control plane *is* shared memory.
    fn broadcast_signal(&self, payload: &[u8]);

    /// Install the handler invoked (on a backend-owned thread) for every
    /// signal received from a peer.
    fn set_signal_handler(&self, handler: SignalHandler);

    /// Aggregate traffic counters for this backend's view of the job.
    fn stats(&self) -> FabricStats;

    /// Tear the backend down: stop service threads and close links. Peers
    /// observe the departure as a death. Idempotent.
    fn shutdown(&self);

    /// Register `rank` as a forthcoming peer (an elastic joiner committed
    /// into the group). After this, `rank` is known — sends to it buffer
    /// and retry instead of failing with `UnknownRank` — and its eventual
    /// silence is handled by the ordinary suspicion machinery. The
    /// in-process backend shares one liveness table across all ranks, so
    /// the default is a no-op.
    fn expect_rank(&self, rank: RankId) {
        let _ = rank;
    }

    /// Ensure a live link to `rank`, dialing `addr` if one is missing
    /// (joiners use this at ticket time to close residual gaps toward
    /// members and earlier joiners they never dialed). Returns true once a
    /// link is up or the backend needs none (the in-process default);
    /// false if the peer is dead or unreachable.
    fn connect_peer(&self, rank: RankId, addr: &str) -> bool {
        let _ = (rank, addr);
        true
    }

    /// When the most recent suspicion (a `suspect` call that actually
    /// transitioned a rank from alive to dead) was recorded, if the backend
    /// tracks it. Used with [`Backend::suspicion_batch_window`] to let a
    /// recovery wait out the tail of a failure burst before agreeing on
    /// the failed set. The default (`None`) disables batching.
    fn last_suspicion(&self) -> Option<Instant> {
        None
    }

    /// The configured suspicion batching window, if any: after a
    /// suspicion, further suspicions landing within this window are part
    /// of the same burst and should be resolved by the same view change.
    fn suspicion_batch_window(&self) -> Option<Duration> {
        None
    }

    /// Enable (`Some`) or disable (`None`) suspicion batching. The default
    /// implementation ignores the setting (no batching).
    fn set_suspicion_batch_window(&self, window: Option<Duration>) {
        let _ = window;
    }
}

/// A rank's handle onto the transport. Cheap to clone; all operations
/// perform the fault-plan and liveness checks that give the transport its
/// ULFM-style per-operation error semantics.
///
/// The concrete message machinery lives behind the [`Backend`] trait;
/// [`Endpoint::new`] builds the classic in-process endpoint over a
/// [`Fabric`], [`Endpoint::from_backend`] wraps any other backend.
#[derive(Clone)]
pub struct Endpoint {
    backend: Arc<dyn Backend>,
}

impl Endpoint {
    /// Create the in-process endpoint for `rank` (which must be registered
    /// with `fabric`).
    pub fn new(fabric: Arc<Fabric>, rank: RankId) -> Self {
        Self {
            backend: Arc::new(InProcBackend::new(fabric, rank)),
        }
    }

    /// Wrap an already-established backend (e.g. a socket backend).
    pub fn from_backend(backend: Arc<dyn Backend>) -> Self {
        Self { backend }
    }

    /// The underlying backend.
    pub fn backend(&self) -> &Arc<dyn Backend> {
        &self.backend
    }

    /// This endpoint's rank id.
    pub fn rank(&self) -> RankId {
        self.backend.rank()
    }

    /// The node topology of the job.
    pub fn topology(&self) -> Topology {
        self.backend.topology()
    }

    /// Total ranks ever part of the job (alive or dead).
    pub fn total_ranks(&self) -> usize {
        self.backend.total_ranks()
    }

    /// The node hosting `rank`.
    pub fn node_of(&self, rank: RankId) -> NodeId {
        self.backend.topology().node_of(rank)
    }

    /// Snapshot of ranks currently believed alive, in id order.
    pub fn alive_ranks(&self) -> Vec<RankId> {
        self.backend.alive_ranks()
    }

    /// Protocol-level fault point (e.g. `"allreduce.step"`). Returns
    /// `Err(SelfDied)` if the fault plan kills this rank here. Also
    /// activates any perturbation plan gated on this point.
    pub fn fault_point(&self, name: &str) -> Result<(), TransportError> {
        self.backend.fault_point(name)
    }

    /// Send `data` to `to` under `tag`.
    ///
    /// The payload travels as a checksummed, sequence-numbered frame; if the
    /// link perturbation drops, corrupts, or reorders it away, the frame is
    /// retransmitted under exponential backoff with jitter until the
    /// receiver acks a copy. A peer that never acks within the retry budget
    /// is *suspected* dead and reported as [`TransportError::PeerDead`] —
    /// the same local error ULFM raises on communication with a failed
    /// process. [`TransportError::SelfDied`] is returned if the fault plan
    /// kills the caller at this operation.
    pub fn send(&self, to: RankId, tag: u64, data: &[u8]) -> Result<(), TransportError> {
        self.backend.send(to, tag, data)
    }

    /// Blocking receive of a message from `from` under `tag`.
    ///
    /// Messages the peer sent before dying are still delivered; once the
    /// buffer is drained and the peer is dead, returns
    /// [`TransportError::PeerDead`].
    pub fn recv(&self, from: RankId, tag: u64) -> Result<Vec<u8>, TransportError> {
        self.backend.recv(from, tag, &|| false, None)
    }

    /// Blocking receive with a deadline (used by rendezvous protocols that
    /// poll an external condition). Expiry is a plain
    /// [`TransportError::Timeout`] and never suspects the peer.
    pub fn recv_timeout(
        &self,
        from: RankId,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<u8>, TransportError> {
        self.backend
            .recv(from, tag, &|| false, Some(Instant::now() + timeout))
    }

    /// Blocking receive that can additionally be interrupted by an external
    /// stop condition (e.g. "this communicator was revoked"). Returns
    /// [`TransportError::Stopped`] when `should_stop` fires. Combine with
    /// [`Endpoint::wake_all`] to make the interruption prompt.
    pub fn recv_stoppable(
        &self,
        from: RankId,
        tag: u64,
        should_stop: &dyn Fn() -> bool,
    ) -> Result<Vec<u8>, TransportError> {
        self.backend.recv(from, tag, should_stop, None)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self, from: RankId, tag: u64) -> Option<Vec<u8>> {
        self.backend.try_recv(from, tag)
    }

    /// Is a message from `(from, tag)` buffered?
    pub fn probe(&self, from: RankId, tag: u64) -> bool {
        self.backend.probe(from, tag)
    }

    /// Drop buffered messages whose tag matches `pred` (used on revoke).
    pub fn purge_tags(&self, pred: impl Fn(u64) -> bool) -> usize {
        self.backend.purge_tags(&pred)
    }

    /// Is this rank still alive?
    pub fn is_self_alive(&self) -> bool {
        self.backend.is_alive(self.backend.rank())
    }

    /// Is `peer` alive according to the failure detector?
    pub fn is_peer_alive(&self, peer: RankId) -> bool {
        self.backend.is_alive(peer)
    }

    /// Voluntarily leave the computation (used when the drop-node policy
    /// retires healthy ranks that share a node with a failed one).
    pub fn retire(&self) {
        self.backend.kill_self();
    }

    /// Install a link-perturbation plan on the backend.
    pub fn set_perturbation(&self, plan: PerturbPlan) {
        self.backend.set_perturbation(plan);
    }

    /// Configure timeout-based failure suspicion for open-ended receives.
    pub fn set_suspicion_timeout(&self, timeout: Option<Duration>) {
        self.backend.set_suspicion_timeout(timeout);
    }

    /// Configure the suspicion batching window (see
    /// [`Backend::set_suspicion_batch_window`]).
    pub fn set_suspicion_batch_window(&self, window: Option<Duration>) {
        self.backend.set_suspicion_batch_window(window);
    }

    /// Wait until the suspicion burst (if any) has settled: sleeps while
    /// the last recorded suspicion is younger than the configured batching
    /// window, so a node-level burst of near-simultaneous deaths is
    /// reported to agreement as **one** failed set and resolved by one
    /// view change. No-op when batching is disabled or no suspicion was
    /// ever recorded.
    pub fn settle_suspicions(&self) {
        let Some(window) = self.backend.suspicion_batch_window() else {
            return;
        };
        while let Some(last) = self.backend.last_suspicion() {
            let age = last.elapsed();
            if age >= window {
                return;
            }
            std::thread::sleep(window - age);
        }
    }

    /// Wake every blocked receiver reachable from this backend so it
    /// re-checks liveness and stop conditions (see [`Backend::wake_all`]).
    pub fn wake_all(&self) {
        self.backend.wake_all();
    }

    /// Best-effort control-plane broadcast to every peer (see
    /// [`Backend::broadcast_signal`]).
    pub fn broadcast_signal(&self, payload: &[u8]) {
        self.backend.broadcast_signal(payload);
    }

    /// Install the handler invoked for every peer signal (see
    /// [`Backend::set_signal_handler`]).
    pub fn set_signal_handler(&self, handler: SignalHandler) {
        self.backend.set_signal_handler(handler);
    }

    /// Aggregate traffic counters of the underlying backend.
    pub fn stats(&self) -> FabricStats {
        self.backend.stats()
    }

    /// Register a forthcoming peer (see [`Backend::expect_rank`]).
    pub fn expect_rank(&self, rank: RankId) {
        self.backend.expect_rank(rank);
    }

    /// Ensure a live link to `rank`, dialing `addr` if missing (see
    /// [`Backend::connect_peer`]).
    pub fn connect_peer(&self, rank: RankId, addr: &str) -> bool {
        self.backend.connect_peer(rank, addr)
    }
}
