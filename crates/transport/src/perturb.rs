//! Message-level perturbation: a seeded, deterministic adversary for the
//! fabric's links.
//!
//! [`crate::FaultPlan`] models clean fail-stop — a rank dies and every peer
//! learns of it instantly. Real fabrics also lose, delay, duplicate, reorder,
//! and corrupt individual messages; those are the failure modes the
//! retransmitting wire protocol in [`crate::Fabric`] exists to heal. A
//! [`PerturbPlan`] scripts that adversity per link (ordered rank pair) with
//! per-message rates and an RNG seed, so every run — including every chaos
//! failure — replays bit-identically.
//!
//! The plan can also be gated on a named fault point
//! ([`PerturbPlan::active_from_point`]): links stay clean until the protocol
//! passes that point, which lets tests perturb only the phase under study.

use crate::ids::RankId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// SplitMix64 — the same tiny deterministic generator the chaos suite uses.
#[derive(Clone, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }
}

/// Per-link perturbation rates. All probabilities are per transmitted frame
/// and drawn independently.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkPerturb {
    /// Probability the frame is silently dropped.
    pub drop: f64,
    /// Probability the frame is delivered twice.
    pub duplicate: f64,
    /// Probability one random bit of the encoded frame is flipped.
    pub corrupt: f64,
    /// Probability the frame is held back and delivered after the *next*
    /// transmission on the same link (one-frame reorder window).
    pub reorder: f64,
    /// Probability the frame is delayed before delivery.
    pub delay: f64,
    /// Delay bounds (uniform draw in `[delay_min, delay_max]`).
    pub delay_min: Duration,
    /// See [`LinkPerturb::delay_min`].
    pub delay_max: Duration,
}

impl LinkPerturb {
    /// No perturbation.
    pub fn clean() -> Self {
        Self::default()
    }

    /// Set the drop rate.
    pub fn drop(mut self, p: f64) -> Self {
        self.drop = p;
        self
    }

    /// Set the duplication rate.
    pub fn duplicate(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    /// Set the bit-corruption rate.
    pub fn corrupt(mut self, p: f64) -> Self {
        self.corrupt = p;
        self
    }

    /// Set the reorder rate.
    pub fn reorder(mut self, p: f64) -> Self {
        self.reorder = p;
        self
    }

    /// Delay a fraction `p` of frames by a uniform draw in `[min, max]`.
    pub fn delay(mut self, p: f64, min: Duration, max: Duration) -> Self {
        self.delay = p;
        self.delay_min = min;
        self.delay_max = max.max(min);
        self
    }

    fn is_clean(&self) -> bool {
        self.drop <= 0.0
            && self.duplicate <= 0.0
            && self.corrupt <= 0.0
            && self.reorder <= 0.0
            && self.delay <= 0.0
    }
}

/// Bounded-retry policy for the fabric's stop-and-wait retransmission path.
///
/// Backoff for attempt `n` is `base · 2ⁿ` capped at `cap`, scaled by a
/// deterministic jitter factor in `[0.5, 1.5)` so retransmissions from
/// different ranks decorrelate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retransmissions allowed after the first attempt before the peer is
    /// suspected dead.
    pub max_retries: u32,
    /// First backoff.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 16,
            base: Duration::from_micros(100),
            cap: Duration::from_millis(5),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retransmission number `attempt` (0-based), with
    /// deterministic jitter derived from `salt`.
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let exp = self.base.saturating_mul(1u32 << attempt.min(12));
        let capped = exp.min(self.cap);
        let jitter = 0.5 + (salt % 1024) as f64 / 1024.0;
        capped.mul_f64(jitter)
    }

    /// Worst-case total time spent backing off before suspicion fires.
    pub fn worst_case_total(&self) -> Duration {
        (0..=self.max_retries).fold(Duration::ZERO, |acc, n| {
            acc + self
                .base
                .saturating_mul(1u32 << n.min(12))
                .min(self.cap)
                .mul_f64(1.5)
        })
    }
}

/// A seeded, reproducible schedule of link-level message perturbation.
#[derive(Clone, Debug, PartialEq)]
pub struct PerturbPlan {
    seed: u64,
    default_link: Option<LinkPerturb>,
    links: Vec<(RankId, RankId, LinkPerturb)>,
    retry: RetryPolicy,
    gate_point: Option<String>,
}

impl Default for PerturbPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl PerturbPlan {
    /// No perturbation at all (links are perfect, as in the seed transport).
    pub fn none() -> Self {
        Self {
            seed: 0,
            default_link: None,
            links: Vec::new(),
            retry: RetryPolicy::default(),
            gate_point: None,
        }
    }

    /// An empty plan with an RNG seed; add links with the builder methods.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::none()
        }
    }

    /// Perturb every link with `p` (specific [`PerturbPlan::link`] entries
    /// still take precedence).
    pub fn all_links(mut self, p: LinkPerturb) -> Self {
        self.default_link = Some(p);
        self
    }

    /// Perturb the ordered link `from → to` with `p`.
    pub fn link(mut self, from: RankId, to: RankId, p: LinkPerturb) -> Self {
        self.links.push((from, to, p));
        self
    }

    /// Perturb every inbound link of `to` with `p` (requires the rank count).
    pub fn links_into(mut self, to: RankId, total_ranks: usize, p: LinkPerturb) -> Self {
        for from in 0..total_ranks {
            if from != to.0 {
                self.links.push((RankId(from), to, p));
            }
        }
        self
    }

    /// Override the retransmission policy.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Keep links clean until the named fault point (see
    /// [`crate::Endpoint::fault_point`]) is first crossed by any rank.
    pub fn active_from_point(mut self, point: &str) -> Self {
        self.gate_point = Some(point.to_string());
        self
    }

    /// The RNG seed baked into the plan.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The retransmission policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Does the plan perturb nothing?
    pub fn is_inert(&self) -> bool {
        self.default_link.is_none_or(|d| d.is_clean())
            && self.links.iter().all(|(_, _, p)| p.is_clean())
    }

    fn spec_for(&self, from: RankId, to: RankId) -> Option<LinkPerturb> {
        self.links
            .iter()
            .find(|(f, t, _)| *f == from && *t == to)
            .map(|(_, _, p)| *p)
            .or(self.default_link)
            .filter(|p| !p.is_clean())
    }
}

/// One scheduled delivery of (possibly mangled) frame bytes.
pub struct Delivery {
    /// Encoded frame bytes as they arrive on the wire.
    pub bytes: Vec<u8>,
    /// Sender-side propagation delay to apply before delivery.
    pub delay: Option<Duration>,
    /// Is this a copy of the frame being transmitted now (as opposed to a
    /// stashed earlier frame being flushed out of order)?
    pub current: bool,
}

/// What the adversary decided for one transmission.
#[derive(Default)]
pub struct Verdict {
    /// Deliveries to perform, in arrival order.
    pub deliveries: Vec<Delivery>,
    /// The current frame was dropped.
    pub dropped: bool,
    /// The current frame had a bit flipped.
    pub corrupted: bool,
    /// The current frame was delivered twice.
    pub duplicated: bool,
    /// The current frame was stashed for out-of-order delivery.
    pub reordered: bool,
}

#[derive(Default)]
struct LinkState {
    rng: Option<SplitMix64>,
    /// One-frame reorder window: a held-back frame delivered after the next
    /// transmission on this link.
    stash: Option<Vec<u8>>,
}

/// Runtime executor of a [`PerturbPlan`]: owns the per-link RNG streams and
/// reorder stashes. Lives inside the fabric.
pub struct Perturber {
    plan: PerturbPlan,
    active: AtomicBool,
    links: parking_lot::Mutex<HashMap<(RankId, RankId), LinkState>>,
}

impl Perturber {
    /// Executor for `plan`.
    pub fn new(plan: PerturbPlan) -> Self {
        let active = plan.gate_point.is_none();
        Self {
            plan,
            active: AtomicBool::new(active),
            links: parking_lot::Mutex::new(HashMap::new()),
        }
    }

    /// An executor that never perturbs anything.
    pub fn inert() -> Self {
        Self::new(PerturbPlan::none())
    }

    /// The underlying plan.
    pub fn plan(&self) -> &PerturbPlan {
        &self.plan
    }

    /// Nothing will ever be perturbed (fast-path check).
    pub fn is_inert(&self) -> bool {
        self.plan.is_inert()
    }

    /// Notify that a named fault point was crossed; activates a gated plan.
    pub fn notify_point(&self, name: &str) {
        if self.plan.gate_point.as_deref() == Some(name) {
            self.active.store(true, Ordering::SeqCst);
        }
    }

    /// Deterministic jitter salt for the sender-side backoff of
    /// retransmission `attempt` of `(src → dst, tag, seq)`.
    pub fn backoff_salt(&self, src: RankId, dst: RankId, tag: u64, seq: u64, attempt: u32) -> u64 {
        let mut h = self.plan.seed ^ 0x5851_f42d_4c95_7f2d;
        for v in [src.0 as u64, dst.0 as u64, tag, seq, attempt as u64] {
            h ^= v;
            h = h.wrapping_mul(0x2545_f491_4f6c_dd1d);
            h ^= h >> 29;
        }
        h
    }

    /// Decide the fate of one frame transmission on `src → dst`.
    ///
    /// Returns the deliveries to perform in order. The current frame is
    /// acknowledged only if a copy of it actually reaches the receiver (the
    /// caller learns that from the receiver's accept result, not from us).
    pub fn transmit(&self, src: RankId, dst: RankId, frame: &[u8]) -> Verdict {
        let Some(spec) = self
            .active
            .load(Ordering::SeqCst)
            .then(|| self.plan.spec_for(src, dst))
            .flatten()
        else {
            // Clean link: deliver verbatim, but still flush any frame stashed
            // while the plan was active so nothing is lost forever.
            let mut v = Verdict::default();
            if let Some(stashed) = self
                .links
                .lock()
                .get_mut(&(src, dst))
                .and_then(|s| s.stash.take())
            {
                v.deliveries.push(Delivery {
                    bytes: stashed,
                    delay: None,
                    current: false,
                });
            }
            v.deliveries.insert(
                0,
                Delivery {
                    bytes: frame.to_vec(),
                    delay: None,
                    current: true,
                },
            );
            return v;
        };

        let mut links = self.links.lock();
        let st = links.entry((src, dst)).or_default();
        let seed = self.plan.seed;
        let rng = st.rng.get_or_insert_with(|| {
            // Distinct deterministic stream per ordered link.
            SplitMix64::new(
                seed ^ (src.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    ^ (dst.0 as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f),
            )
        });

        let mut v = Verdict::default();
        let flush = st.stash.is_some();

        if rng.chance(spec.drop) {
            v.dropped = true;
        } else {
            let mut bytes = frame.to_vec();
            if rng.chance(spec.corrupt) {
                let bit = rng.next_u64() as usize % (bytes.len() * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
                v.corrupted = true;
            }
            let delay = rng.chance(spec.delay).then(|| {
                let span = spec.delay_max.saturating_sub(spec.delay_min);
                spec.delay_min + span.mul_f64(rng.next_f64())
            });
            if !flush && !v.corrupted && rng.chance(spec.reorder) {
                // Hold the frame back; it arrives after the next transmission
                // on this link (the sender's retransmission heals the gap).
                st.stash = Some(bytes);
                v.reordered = true;
            } else {
                v.duplicated = rng.chance(spec.duplicate);
                v.deliveries.push(Delivery {
                    bytes: bytes.clone(),
                    delay,
                    current: true,
                });
                if v.duplicated {
                    v.deliveries.push(Delivery {
                        bytes,
                        delay: None,
                        current: true,
                    });
                }
            }
        }

        if flush {
            if let Some(stashed) = st.stash.take() {
                v.deliveries.push(Delivery {
                    bytes: stashed,
                    delay: None,
                    current: false,
                });
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Vec<u8> {
        crate::wire::encode_frame(RankId(0), 1, 0, b"payload")
    }

    #[test]
    fn inert_plan_delivers_verbatim() {
        let p = Perturber::inert();
        let f = frame();
        let v = p.transmit(RankId(0), RankId(1), &f);
        assert_eq!(v.deliveries.len(), 1);
        assert!(v.deliveries[0].current);
        assert_eq!(v.deliveries[0].bytes, f);
        assert!(!v.dropped && !v.corrupted && !v.duplicated && !v.reordered);
    }

    #[test]
    fn drop_rate_one_never_delivers() {
        let p = Perturber::new(PerturbPlan::seeded(7).all_links(LinkPerturb::clean().drop(1.0)));
        for _ in 0..10 {
            let v = p.transmit(RankId(0), RankId(1), &frame());
            assert!(v.dropped);
            assert!(v.deliveries.is_empty());
        }
    }

    #[test]
    fn duplicate_rate_one_delivers_twice() {
        let p =
            Perturber::new(PerturbPlan::seeded(7).all_links(LinkPerturb::clean().duplicate(1.0)));
        let v = p.transmit(RankId(0), RankId(1), &frame());
        assert!(v.duplicated);
        assert_eq!(v.deliveries.len(), 2);
        assert_eq!(v.deliveries[0].bytes, v.deliveries[1].bytes);
    }

    #[test]
    fn corrupt_changes_exactly_one_bit() {
        let p = Perturber::new(PerturbPlan::seeded(7).all_links(LinkPerturb::clean().corrupt(1.0)));
        let f = frame();
        let v = p.transmit(RankId(0), RankId(1), &f);
        assert!(v.corrupted);
        let got = &v.deliveries[0].bytes;
        let flipped: u32 = f
            .iter()
            .zip(got.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
        assert!(crate::wire::decode_frame(got).is_err());
    }

    #[test]
    fn reorder_stashes_then_flushes_on_next_transmit() {
        let p = Perturber::new(PerturbPlan::seeded(7).all_links(LinkPerturb::clean().reorder(1.0)));
        let f0 = frame();
        let v0 = p.transmit(RankId(0), RankId(1), &f0);
        assert!(v0.reordered);
        assert!(v0.deliveries.is_empty());
        // Next transmit on the same link flushes the stash after itself.
        let f1 = crate::wire::encode_frame(RankId(0), 1, 1, b"next");
        let v1 = p.transmit(RankId(0), RankId(1), &f1);
        assert_eq!(v1.deliveries.len(), 2);
        assert!(v1.deliveries[0].current);
        assert_eq!(v1.deliveries[0].bytes, f1);
        assert!(!v1.deliveries[1].current);
        assert_eq!(v1.deliveries[1].bytes, f0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let mk = || {
            Perturber::new(
                PerturbPlan::seeded(1234)
                    .all_links(LinkPerturb::clean().drop(0.3).duplicate(0.3).corrupt(0.2)),
            )
        };
        let (a, b) = (mk(), mk());
        for i in 0..200u64 {
            let f = crate::wire::encode_frame(RankId(0), 1, i, &i.to_le_bytes());
            let va = a.transmit(RankId(0), RankId(1), &f);
            let vb = b.transmit(RankId(0), RankId(1), &f);
            assert_eq!(va.dropped, vb.dropped);
            assert_eq!(va.corrupted, vb.corrupted);
            assert_eq!(va.duplicated, vb.duplicated);
            assert_eq!(
                va.deliveries.iter().map(|d| &d.bytes).collect::<Vec<_>>(),
                vb.deliveries.iter().map(|d| &d.bytes).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn link_spec_overrides_default() {
        let plan = PerturbPlan::seeded(7)
            .all_links(LinkPerturb::clean().drop(1.0))
            .link(RankId(0), RankId(1), LinkPerturb::clean());
        // The explicit clean link wins over the lossy default.
        let p = Perturber::new(plan);
        let v = p.transmit(RankId(0), RankId(1), &frame());
        assert_eq!(v.deliveries.len(), 1);
        let v = p.transmit(RankId(1), RankId(0), &frame());
        assert!(v.dropped);
    }

    #[test]
    fn gated_plan_waits_for_fault_point() {
        let p = Perturber::new(
            PerturbPlan::seeded(7)
                .all_links(LinkPerturb::clean().drop(1.0))
                .active_from_point("warmup.done"),
        );
        assert_eq!(
            p.transmit(RankId(0), RankId(1), &frame()).deliveries.len(),
            1
        );
        p.notify_point("other.point");
        assert_eq!(
            p.transmit(RankId(0), RankId(1), &frame()).deliveries.len(),
            1
        );
        p.notify_point("warmup.done");
        assert!(p.transmit(RankId(0), RankId(1), &frame()).dropped);
    }

    #[test]
    fn links_into_targets_inbound_only() {
        let plan = PerturbPlan::seeded(7).links_into(RankId(2), 4, LinkPerturb::clean().drop(1.0));
        let p = Perturber::new(plan);
        assert!(p.transmit(RankId(0), RankId(2), &frame()).dropped);
        assert!(p.transmit(RankId(3), RankId(2), &frame()).dropped);
        assert_eq!(
            p.transmit(RankId(2), RankId(0), &frame()).deliveries.len(),
            1
        );
    }

    #[test]
    fn backoff_grows_and_caps() {
        let pol = RetryPolicy {
            max_retries: 10,
            base: Duration::from_micros(100),
            cap: Duration::from_millis(2),
        };
        let b0 = pol.backoff(0, 512);
        let b4 = pol.backoff(4, 512);
        assert!(b4 > b0);
        // Jitter is at most 1.5×cap.
        assert!(pol.backoff(30, 1023) <= Duration::from_millis(3));
        assert!(pol.worst_case_total() < Duration::from_secs(1));
    }

    #[test]
    fn is_inert_detects_clean_plans() {
        assert!(PerturbPlan::none().is_inert());
        assert!(PerturbPlan::seeded(3)
            .all_links(LinkPerturb::clean())
            .is_inert());
        assert!(!PerturbPlan::seeded(3)
            .all_links(LinkPerturb::clean().drop(0.1))
            .is_inert());
    }
}
