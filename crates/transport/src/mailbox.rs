//! Per-rank mailboxes with MPI-style (source, tag) matching.

use crate::ids::RankId;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

/// A delivered message: who sent it and the payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Sender of the message.
    pub src: RankId,
    /// Application tag. Upper layers encode (communicator id, collective
    /// phase, attempt number, ...) into this, like MPI implementations do.
    pub tag: u64,
    /// Payload bytes.
    pub data: Vec<u8>,
}

/// Result of a blocking [`Mailbox::pop_matching`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecvOutcome {
    /// A matching message was delivered.
    Message(Vec<u8>),
    /// The source died and no matching message is buffered.
    SrcDead,
    /// The external stop condition fired (e.g. communicator revoked).
    Stopped,
    /// The deadline elapsed.
    TimedOut,
}

#[derive(Default)]
struct Inner {
    /// FIFO queue per (source, tag). FIFO per channel matches MPI's
    /// non-overtaking guarantee.
    queues: HashMap<(RankId, u64), VecDeque<Vec<u8>>>,
    /// Bumped on every rank death so blocked receivers re-check liveness.
    death_epoch: u64,
}

/// A rank's incoming-message buffer.
///
/// `push` never blocks (the fabric is an infinite-buffer network, like an
/// eager-protocol MPI for the message sizes we inject). `pop_matching`
/// blocks until a matching message arrives or the waker is notified of a
/// death event, at which point the caller re-checks the alive table.
pub struct Mailbox {
    inner: Mutex<Inner>,
    cv: Condvar,
    pushes: std::sync::Arc<telemetry::Counter>,
    death_wakes: std::sync::Arc<telemetry::Counter>,
}

impl Default for Mailbox {
    fn default() -> Self {
        Self::new()
    }
}

impl Mailbox {
    /// An empty mailbox.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            cv: Condvar::new(),
            pushes: telemetry::counter("transport.mailbox.pushes"),
            death_wakes: telemetry::counter("transport.mailbox.death_wakes"),
        }
    }

    /// Deliver a message. Wakes any blocked receiver.
    pub fn push(&self, env: Envelope) {
        let mut inner = self.inner.lock();
        inner
            .queues
            .entry((env.src, env.tag))
            .or_default()
            .push_back(env.data);
        drop(inner);
        self.pushes.incr();
        self.cv.notify_all();
    }

    /// Non-blocking probe: is a message from `(src, tag)` available?
    pub fn probe(&self, src: RankId, tag: u64) -> bool {
        let inner = self.inner.lock();
        inner.queues.get(&(src, tag)).is_some_and(|q| !q.is_empty())
    }

    /// Try to pop a matching message without blocking.
    pub fn try_pop(&self, src: RankId, tag: u64) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock();
        inner
            .queues
            .get_mut(&(src, tag))
            .and_then(|q| q.pop_front())
    }

    /// Blocking pop with liveness and external-stop re-checks.
    ///
    /// Checked in priority order on every wakeup:
    /// 1. `should_stop` — an external interrupt (ULFM's communicator
    ///    revocation); wins even over a buffered message, because operations
    ///    on a revoked communicator must fail;
    /// 2. a buffered matching message — drained *before* liveness so that
    ///    messages sent by a peer shortly before its death are still
    ///    delivered (ULFM requires already-matched traffic to complete);
    /// 3. source death;
    /// 4. the optional deadline.
    pub fn pop_matching(
        &self,
        src: RankId,
        tag: u64,
        is_src_alive: impl Fn() -> bool,
        should_stop: impl Fn() -> bool,
        deadline: Option<Instant>,
    ) -> RecvOutcome {
        let mut inner = self.inner.lock();
        loop {
            if should_stop() {
                return RecvOutcome::Stopped;
            }
            if let Some(q) = inner.queues.get_mut(&(src, tag)) {
                if let Some(data) = q.pop_front() {
                    return RecvOutcome::Message(data);
                }
            }
            if !is_src_alive() {
                return RecvOutcome::SrcDead;
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return RecvOutcome::TimedOut;
                    }
                    // Bounded wait: also serves as a backstop in case a death
                    // notification races with this wait registration.
                    let wait = (d - now).min(Duration::from_millis(20));
                    self.cv.wait_for(&mut inner, wait);
                }
                None => {
                    // Backstop poll keeps us safe against a lost wakeup from
                    // a death event; 20ms only matters when a peer dies,
                    // never on the fast path (pushes always notify).
                    self.cv.wait_for(&mut inner, Duration::from_millis(20));
                }
            }
        }
    }

    /// Wake all blocked receivers so they re-check liveness and stop
    /// conditions. Called by the fabric whenever any rank dies or a
    /// communicator is revoked.
    pub fn wake_waiters(&self) {
        let mut inner = self.inner.lock();
        inner.death_epoch += 1;
        drop(inner);
        self.death_wakes.incr();
        self.cv.notify_all();
    }

    /// Total number of buffered messages (diagnostics only).
    pub fn buffered(&self) -> usize {
        let inner = self.inner.lock();
        inner.queues.values().map(|q| q.len()).sum()
    }

    /// Drop all buffered messages carrying `tag_pred`-matching tags.
    /// Used when a communicator is revoked to flush stale traffic.
    pub fn purge_where(&self, tag_pred: impl Fn(u64) -> bool) -> usize {
        let mut inner = self.inner.lock();
        let mut dropped = 0;
        inner.queues.retain(|(_, tag), q| {
            if tag_pred(*tag) {
                dropped += q.len();
                false
            } else {
                true
            }
        });
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    fn env(src: usize, tag: u64, byte: u8) -> Envelope {
        Envelope {
            src: RankId(src),
            tag,
            data: vec![byte],
        }
    }

    #[test]
    fn push_pop_fifo_per_channel() {
        let mb = Mailbox::new();
        mb.push(env(1, 7, 0xaa));
        mb.push(env(1, 7, 0xbb));
        assert_eq!(mb.try_pop(RankId(1), 7), Some(vec![0xaa]));
        assert_eq!(mb.try_pop(RankId(1), 7), Some(vec![0xbb]));
        assert_eq!(mb.try_pop(RankId(1), 7), None);
    }

    #[test]
    fn channels_are_independent() {
        let mb = Mailbox::new();
        mb.push(env(1, 7, 1));
        mb.push(env(2, 7, 2));
        mb.push(env(1, 8, 3));
        assert_eq!(mb.try_pop(RankId(2), 7), Some(vec![2]));
        assert_eq!(mb.try_pop(RankId(1), 8), Some(vec![3]));
        assert_eq!(mb.try_pop(RankId(1), 7), Some(vec![1]));
    }

    #[test]
    fn probe_does_not_consume() {
        let mb = Mailbox::new();
        mb.push(env(0, 1, 9));
        assert!(mb.probe(RankId(0), 1));
        assert!(mb.probe(RankId(0), 1));
        assert_eq!(mb.try_pop(RankId(0), 1), Some(vec![9]));
        assert!(!mb.probe(RankId(0), 1));
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let t =
            std::thread::spawn(move || mb2.pop_matching(RankId(5), 42, || true, || false, None));
        std::thread::sleep(Duration::from_millis(30));
        mb.push(env(5, 42, 77));
        assert_eq!(t.join().unwrap(), RecvOutcome::Message(vec![77]));
    }

    #[test]
    fn blocking_pop_reports_source_death() {
        let mb = Arc::new(Mailbox::new());
        let alive = Arc::new(AtomicBool::new(true));
        let (mb2, alive2) = (Arc::clone(&mb), Arc::clone(&alive));
        let t = std::thread::spawn(move || {
            mb2.pop_matching(
                RankId(5),
                42,
                || alive2.load(Ordering::SeqCst),
                || false,
                None,
            )
        });
        std::thread::sleep(Duration::from_millis(20));
        alive.store(false, Ordering::SeqCst);
        mb.wake_waiters();
        assert_eq!(t.join().unwrap(), RecvOutcome::SrcDead);
    }

    #[test]
    fn blocking_pop_interrupted_by_stop_condition() {
        let mb = Arc::new(Mailbox::new());
        let stop = Arc::new(AtomicBool::new(false));
        let (mb2, stop2) = (Arc::clone(&mb), Arc::clone(&stop));
        let t = std::thread::spawn(move || {
            mb2.pop_matching(
                RankId(5),
                42,
                || true,
                || stop2.load(Ordering::SeqCst),
                None,
            )
        });
        std::thread::sleep(Duration::from_millis(20));
        stop.store(true, Ordering::SeqCst);
        mb.wake_waiters();
        assert_eq!(t.join().unwrap(), RecvOutcome::Stopped);
    }

    #[test]
    fn stop_condition_beats_buffered_message() {
        // A revoked communicator must fail even if a message is waiting.
        let mb = Mailbox::new();
        mb.push(env(5, 1, 3));
        let got = mb.pop_matching(RankId(5), 1, || true, || true, None);
        assert_eq!(got, RecvOutcome::Stopped);
    }

    #[test]
    fn messages_sent_before_death_are_still_delivered() {
        let mb = Mailbox::new();
        mb.push(env(5, 1, 3));
        // Source is dead, but the buffered message must be drained first.
        let got = mb.pop_matching(RankId(5), 1, || false, || false, None);
        assert_eq!(got, RecvOutcome::Message(vec![3]));
        let got = mb.pop_matching(RankId(5), 1, || false, || false, None);
        assert_eq!(got, RecvOutcome::SrcDead);
    }

    #[test]
    fn deadline_expires() {
        let mb = Mailbox::new();
        let r = mb.pop_matching(
            RankId(1),
            1,
            || true,
            || false,
            Some(Instant::now() + Duration::from_millis(10)),
        );
        assert_eq!(r, RecvOutcome::TimedOut);
    }

    #[test]
    fn purge_drops_only_matching_tags() {
        let mb = Mailbox::new();
        mb.push(env(0, 0x10, 1));
        mb.push(env(0, 0x10, 2));
        mb.push(env(0, 0x20, 3));
        let dropped = mb.purge_where(|t| t == 0x10);
        assert_eq!(dropped, 2);
        assert_eq!(mb.buffered(), 1);
        assert_eq!(mb.try_pop(RankId(0), 0x20), Some(vec![3]));
    }
}
