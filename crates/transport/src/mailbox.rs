//! Per-rank mailboxes with MPI-style (source, tag) matching.
//!
//! Frames arrive through [`Mailbox::accept_frame`], which verifies the
//! checksum, suppresses duplicate sequence numbers, and reassembles each
//! (source, tag) channel into order before exposing payloads to the
//! matching interface — the receiver half of the retransmitting wire
//! protocol.

use crate::ids::RankId;
use crate::wire::{self, FrameError};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::Instant;

/// A delivered message: who sent it and the payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Sender of the message.
    pub src: RankId,
    /// Application tag. Upper layers encode (communicator id, collective
    /// phase, attempt number, ...) into this, like MPI implementations do.
    pub tag: u64,
    /// Payload bytes.
    pub data: Vec<u8>,
}

/// Result of a blocking [`Mailbox::pop_matching`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecvOutcome {
    /// A matching message was delivered.
    Message(Vec<u8>),
    /// The source died and no matching message is buffered.
    SrcDead,
    /// The receiving rank itself was marked dead (e.g. suspected by a peer)
    /// while blocked.
    SelfDead,
    /// The external stop condition fired (e.g. communicator revoked).
    Stopped,
    /// The deadline elapsed.
    TimedOut,
}

/// Link-layer acknowledgement for one delivered frame. Because the fabric's
/// "network" is a function call on the sender's thread, this return value is
/// the ack a real NIC would send back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameAck {
    /// The frame is new; the receiver now holds it.
    Accepted,
    /// The receiver already holds this (src, tag, seq) — a retransmission or
    /// duplicated copy. Still an ack: the data is safe.
    Duplicate,
    /// The frame failed checksum/structure validation and was discarded.
    Corrupt(FrameError),
}

impl FrameAck {
    /// Does this ack confirm the receiver holds the frame's payload?
    pub fn is_acked(&self) -> bool {
        matches!(self, FrameAck::Accepted | FrameAck::Duplicate)
    }
}

/// Receiver-side state of one ordered (source, tag) channel.
#[derive(Default)]
struct ChannelRx {
    /// Next sequence number to release in order.
    next_seq: u64,
    /// Out-of-order frames awaiting their predecessors.
    pending: BTreeMap<u64, Vec<u8>>,
}

#[derive(Default)]
struct Inner {
    /// FIFO queue per (source, tag). FIFO per channel matches MPI's
    /// non-overtaking guarantee.
    queues: HashMap<(RankId, u64), VecDeque<Vec<u8>>>,
    /// Sequence tracking + reassembly per (source, tag) channel.
    channels: HashMap<(RankId, u64), ChannelRx>,
    /// Bumped on every rank death so blocked receivers re-check liveness.
    death_epoch: u64,
}

/// A rank's incoming-message buffer.
///
/// `push` never blocks (the fabric is an infinite-buffer network, like an
/// eager-protocol MPI for the message sizes we inject). `pop_matching`
/// blocks until a matching message arrives or the waker is notified of a
/// death event, at which point the caller re-checks the alive table.
pub struct Mailbox {
    inner: Mutex<Inner>,
    cv: Condvar,
    pushes: std::sync::Arc<telemetry::Counter>,
    death_wakes: std::sync::Arc<telemetry::Counter>,
}

impl Default for Mailbox {
    fn default() -> Self {
        Self::new()
    }
}

impl Mailbox {
    /// An empty mailbox.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            cv: Condvar::new(),
            pushes: telemetry::counter("transport.mailbox.pushes"),
            death_wakes: telemetry::counter("transport.mailbox.death_wakes"),
        }
    }

    /// Deliver a message directly, bypassing the link layer (tests and
    /// loopback paths). Wakes any blocked receiver.
    pub fn push(&self, env: Envelope) {
        let mut inner = self.inner.lock();
        inner
            .queues
            .entry((env.src, env.tag))
            .or_default()
            .push_back(env.data);
        drop(inner);
        self.pushes.incr();
        self.cv.notify_all();
    }

    /// Accept one encoded link frame: verify the checksum, suppress
    /// duplicates, buffer out-of-order arrivals, and release every in-order
    /// payload to the matching interface. The return value is the link-layer
    /// ack the sender's retransmission loop acts on.
    pub fn accept_frame(&self, bytes: &[u8]) -> FrameAck {
        let frame = match wire::decode_frame(bytes) {
            Ok(f) => f,
            Err(e) => return FrameAck::Corrupt(e),
        };
        let mut inner = self.inner.lock();
        let key = (frame.src, frame.tag);
        let ch = inner.channels.entry(key).or_default();
        if frame.seq < ch.next_seq || ch.pending.contains_key(&frame.seq) {
            return FrameAck::Duplicate;
        }
        ch.pending.insert(frame.seq, frame.payload);
        // Release the in-order prefix.
        let mut ready = Vec::new();
        while let Some(payload) = ch.pending.remove(&ch.next_seq) {
            ready.push(payload);
            ch.next_seq += 1;
        }
        if !ready.is_empty() {
            let n = ready.len() as u64;
            let q = inner.queues.entry(key).or_default();
            q.extend(ready);
            drop(inner);
            self.pushes.add(n);
            self.cv.notify_all();
        }
        FrameAck::Accepted
    }

    /// Non-blocking probe: is a message from `(src, tag)` available?
    pub fn probe(&self, src: RankId, tag: u64) -> bool {
        let inner = self.inner.lock();
        inner.queues.get(&(src, tag)).is_some_and(|q| !q.is_empty())
    }

    /// Try to pop a matching message without blocking.
    pub fn try_pop(&self, src: RankId, tag: u64) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock();
        inner
            .queues
            .get_mut(&(src, tag))
            .and_then(|q| q.pop_front())
    }

    /// Blocking pop with liveness and external-stop re-checks.
    ///
    /// Checked in priority order on every wakeup:
    /// 1. `should_stop` — an external interrupt (ULFM's communicator
    ///    revocation); wins even over a buffered message, because operations
    ///    on a revoked communicator must fail;
    /// 2. a buffered matching message — drained *before* liveness so that
    ///    messages sent by a peer shortly before its death are still
    ///    delivered (ULFM requires already-matched traffic to complete);
    /// 3. death of the receiving rank itself (a peer's suspicion can kill a
    ///    rank that is blocked here; without this check it would hang);
    /// 4. source death;
    /// 5. the optional deadline.
    ///
    /// Waits are precise: every producer path (`push`, `accept_frame`,
    /// `wake_waiters`) takes the inner lock before notifying, so a waiter
    /// that observed "nothing to do" under the lock is guaranteed to be
    /// registered on the condvar before any state change can complete — no
    /// polling backstop is needed, and a deadline of 5 ms fires in ≈5 ms.
    pub fn pop_matching(
        &self,
        src: RankId,
        tag: u64,
        is_src_alive: impl Fn() -> bool,
        is_self_alive: impl Fn() -> bool,
        should_stop: impl Fn() -> bool,
        deadline: Option<Instant>,
    ) -> RecvOutcome {
        let mut inner = self.inner.lock();
        loop {
            if should_stop() {
                return RecvOutcome::Stopped;
            }
            if let Some(q) = inner.queues.get_mut(&(src, tag)) {
                if let Some(data) = q.pop_front() {
                    return RecvOutcome::Message(data);
                }
            }
            if !is_self_alive() {
                return RecvOutcome::SelfDead;
            }
            if !is_src_alive() {
                return RecvOutcome::SrcDead;
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return RecvOutcome::TimedOut;
                    }
                    self.cv.wait_for(&mut inner, d - now);
                }
                None => {
                    self.cv.wait(&mut inner);
                }
            }
        }
    }

    /// Wake all blocked receivers so they re-check liveness and stop
    /// conditions. Called by the fabric whenever any rank dies or a
    /// communicator is revoked.
    pub fn wake_waiters(&self) {
        let mut inner = self.inner.lock();
        inner.death_epoch += 1;
        drop(inner);
        self.death_wakes.incr();
        self.cv.notify_all();
    }

    /// Total number of buffered messages (diagnostics only).
    pub fn buffered(&self) -> usize {
        let inner = self.inner.lock();
        inner.queues.values().map(|q| q.len()).sum()
    }

    /// Drop all buffered messages carrying `tag_pred`-matching tags.
    /// Used when a communicator is revoked to flush stale traffic.
    ///
    /// Also discards matching frames still sitting in reassembly, advancing
    /// the channel cursor past them so a late retransmission of a purged
    /// frame acks as a duplicate instead of wedging the channel.
    pub fn purge_where(&self, tag_pred: impl Fn(u64) -> bool) -> usize {
        let mut inner = self.inner.lock();
        let mut dropped = 0;
        inner.queues.retain(|(_, tag), q| {
            if tag_pred(*tag) {
                dropped += q.len();
                false
            } else {
                true
            }
        });
        for ((_, tag), ch) in inner.channels.iter_mut() {
            if tag_pred(*tag) && !ch.pending.is_empty() {
                dropped += ch.pending.len();
                if let Some(&max) = ch.pending.keys().next_back() {
                    ch.next_seq = ch.next_seq.max(max + 1);
                }
                ch.pending.clear();
            }
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn env(src: usize, tag: u64, byte: u8) -> Envelope {
        Envelope {
            src: RankId(src),
            tag,
            data: vec![byte],
        }
    }

    #[test]
    fn push_pop_fifo_per_channel() {
        let mb = Mailbox::new();
        mb.push(env(1, 7, 0xaa));
        mb.push(env(1, 7, 0xbb));
        assert_eq!(mb.try_pop(RankId(1), 7), Some(vec![0xaa]));
        assert_eq!(mb.try_pop(RankId(1), 7), Some(vec![0xbb]));
        assert_eq!(mb.try_pop(RankId(1), 7), None);
    }

    #[test]
    fn channels_are_independent() {
        let mb = Mailbox::new();
        mb.push(env(1, 7, 1));
        mb.push(env(2, 7, 2));
        mb.push(env(1, 8, 3));
        assert_eq!(mb.try_pop(RankId(2), 7), Some(vec![2]));
        assert_eq!(mb.try_pop(RankId(1), 8), Some(vec![3]));
        assert_eq!(mb.try_pop(RankId(1), 7), Some(vec![1]));
    }

    #[test]
    fn probe_does_not_consume() {
        let mb = Mailbox::new();
        mb.push(env(0, 1, 9));
        assert!(mb.probe(RankId(0), 1));
        assert!(mb.probe(RankId(0), 1));
        assert_eq!(mb.try_pop(RankId(0), 1), Some(vec![9]));
        assert!(!mb.probe(RankId(0), 1));
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || {
            mb2.pop_matching(RankId(5), 42, || true, || true, || false, None)
        });
        std::thread::sleep(Duration::from_millis(30));
        mb.push(env(5, 42, 77));
        assert_eq!(t.join().unwrap(), RecvOutcome::Message(vec![77]));
    }

    #[test]
    fn blocking_pop_reports_source_death() {
        let mb = Arc::new(Mailbox::new());
        let alive = Arc::new(AtomicBool::new(true));
        let (mb2, alive2) = (Arc::clone(&mb), Arc::clone(&alive));
        let t = std::thread::spawn(move || {
            mb2.pop_matching(
                RankId(5),
                42,
                || alive2.load(Ordering::SeqCst),
                || true,
                || false,
                None,
            )
        });
        std::thread::sleep(Duration::from_millis(20));
        alive.store(false, Ordering::SeqCst);
        mb.wake_waiters();
        assert_eq!(t.join().unwrap(), RecvOutcome::SrcDead);
    }

    #[test]
    fn blocking_pop_reports_own_death() {
        // A rank killed by a peer's suspicion while blocked in recv must
        // observe its own death instead of hanging.
        let mb = Arc::new(Mailbox::new());
        let alive = Arc::new(AtomicBool::new(true));
        let (mb2, alive2) = (Arc::clone(&mb), Arc::clone(&alive));
        let t = std::thread::spawn(move || {
            mb2.pop_matching(
                RankId(5),
                42,
                || true,
                || alive2.load(Ordering::SeqCst),
                || false,
                None,
            )
        });
        std::thread::sleep(Duration::from_millis(20));
        alive.store(false, Ordering::SeqCst);
        mb.wake_waiters();
        assert_eq!(t.join().unwrap(), RecvOutcome::SelfDead);
    }

    #[test]
    fn blocking_pop_interrupted_by_stop_condition() {
        let mb = Arc::new(Mailbox::new());
        let stop = Arc::new(AtomicBool::new(false));
        let (mb2, stop2) = (Arc::clone(&mb), Arc::clone(&stop));
        let t = std::thread::spawn(move || {
            mb2.pop_matching(
                RankId(5),
                42,
                || true,
                || true,
                || stop2.load(Ordering::SeqCst),
                None,
            )
        });
        std::thread::sleep(Duration::from_millis(20));
        stop.store(true, Ordering::SeqCst);
        mb.wake_waiters();
        assert_eq!(t.join().unwrap(), RecvOutcome::Stopped);
    }

    #[test]
    fn stop_condition_beats_buffered_message() {
        // A revoked communicator must fail even if a message is waiting.
        let mb = Mailbox::new();
        mb.push(env(5, 1, 3));
        let got = mb.pop_matching(RankId(5), 1, || true, || true, || true, None);
        assert_eq!(got, RecvOutcome::Stopped);
    }

    #[test]
    fn messages_sent_before_death_are_still_delivered() {
        let mb = Mailbox::new();
        mb.push(env(5, 1, 3));
        // Source is dead, but the buffered message must be drained first.
        let got = mb.pop_matching(RankId(5), 1, || false, || true, || false, None);
        assert_eq!(got, RecvOutcome::Message(vec![3]));
        let got = mb.pop_matching(RankId(5), 1, || false, || true, || false, None);
        assert_eq!(got, RecvOutcome::SrcDead);
    }

    #[test]
    fn deadline_expires() {
        let mb = Mailbox::new();
        let r = mb.pop_matching(
            RankId(1),
            1,
            || true,
            || true,
            || false,
            Some(Instant::now() + Duration::from_millis(10)),
        );
        assert_eq!(r, RecvOutcome::TimedOut);
    }

    #[test]
    fn short_deadline_is_not_quantized() {
        // Regression: waits used to be chunked into 20 ms polls; a 5 ms
        // deadline must fire in ≈5 ms, not a scheduler quantum multiple.
        let mb = Mailbox::new();
        let start = Instant::now();
        let r = mb.pop_matching(
            RankId(1),
            1,
            || true,
            || true,
            || false,
            Some(start + Duration::from_millis(5)),
        );
        let elapsed = start.elapsed();
        assert_eq!(r, RecvOutcome::TimedOut);
        assert!(
            elapsed >= Duration::from_millis(5),
            "woke before the deadline: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_millis(15),
            "5 ms deadline took {elapsed:?}"
        );
    }

    fn frame(src: usize, tag: u64, seq: u64, payload: &[u8]) -> Vec<u8> {
        crate::wire::encode_frame(RankId(src), tag, seq, payload)
    }

    #[test]
    fn accept_frame_delivers_in_order() {
        let mb = Mailbox::new();
        assert_eq!(mb.accept_frame(&frame(1, 7, 0, b"a")), FrameAck::Accepted);
        assert_eq!(mb.accept_frame(&frame(1, 7, 1, b"b")), FrameAck::Accepted);
        assert_eq!(mb.try_pop(RankId(1), 7), Some(b"a".to_vec()));
        assert_eq!(mb.try_pop(RankId(1), 7), Some(b"b".to_vec()));
    }

    #[test]
    fn accept_frame_suppresses_duplicates() {
        let mb = Mailbox::new();
        let f = frame(1, 7, 0, b"a");
        assert_eq!(mb.accept_frame(&f), FrameAck::Accepted);
        assert_eq!(mb.accept_frame(&f), FrameAck::Duplicate);
        assert_eq!(mb.try_pop(RankId(1), 7), Some(b"a".to_vec()));
        assert_eq!(mb.try_pop(RankId(1), 7), None);
    }

    #[test]
    fn accept_frame_reassembles_out_of_order() {
        let mb = Mailbox::new();
        assert_eq!(mb.accept_frame(&frame(1, 7, 1, b"b")), FrameAck::Accepted);
        assert_eq!(mb.accept_frame(&frame(1, 7, 2, b"c")), FrameAck::Accepted);
        // Nothing visible until the gap fills.
        assert_eq!(mb.try_pop(RankId(1), 7), None);
        assert_eq!(mb.accept_frame(&frame(1, 7, 0, b"a")), FrameAck::Accepted);
        assert_eq!(mb.try_pop(RankId(1), 7), Some(b"a".to_vec()));
        assert_eq!(mb.try_pop(RankId(1), 7), Some(b"b".to_vec()));
        assert_eq!(mb.try_pop(RankId(1), 7), Some(b"c".to_vec()));
    }

    #[test]
    fn accept_frame_dedups_pending_out_of_order_copy() {
        let mb = Mailbox::new();
        assert_eq!(mb.accept_frame(&frame(1, 7, 1, b"b")), FrameAck::Accepted);
        assert_eq!(mb.accept_frame(&frame(1, 7, 1, b"b")), FrameAck::Duplicate);
    }

    #[test]
    fn accept_frame_rejects_corruption() {
        let mb = Mailbox::new();
        let mut f = frame(1, 7, 0, b"payload");
        let n = f.len();
        f[n - 3] ^= 0x40;
        assert!(matches!(mb.accept_frame(&f), FrameAck::Corrupt(_)));
        // Nothing was delivered, and the channel cursor did not move.
        assert_eq!(mb.try_pop(RankId(1), 7), None);
        assert_eq!(
            mb.accept_frame(&frame(1, 7, 0, b"payload")),
            FrameAck::Accepted
        );
        assert_eq!(mb.try_pop(RankId(1), 7), Some(b"payload".to_vec()));
    }

    #[test]
    fn accept_frame_channels_are_independent() {
        let mb = Mailbox::new();
        assert_eq!(mb.accept_frame(&frame(1, 7, 0, b"a")), FrameAck::Accepted);
        assert_eq!(mb.accept_frame(&frame(2, 7, 0, b"b")), FrameAck::Accepted);
        assert_eq!(mb.accept_frame(&frame(1, 8, 0, b"c")), FrameAck::Accepted);
        assert_eq!(mb.try_pop(RankId(2), 7), Some(b"b".to_vec()));
        assert_eq!(mb.try_pop(RankId(1), 8), Some(b"c".to_vec()));
        assert_eq!(mb.try_pop(RankId(1), 7), Some(b"a".to_vec()));
    }

    #[test]
    fn purge_advances_channel_past_pending_frames() {
        let mb = Mailbox::new();
        // seq 1 waits in reassembly for seq 0 when the purge hits.
        assert_eq!(mb.accept_frame(&frame(1, 7, 1, b"b")), FrameAck::Accepted);
        assert_eq!(mb.purge_where(|t| t == 7), 1);
        // A late retransmission of a purged frame acks as duplicate ...
        assert_eq!(mb.accept_frame(&frame(1, 7, 0, b"a")), FrameAck::Duplicate);
        // ... and the channel keeps working at the advanced cursor.
        assert_eq!(mb.accept_frame(&frame(1, 7, 2, b"c")), FrameAck::Accepted);
        assert_eq!(mb.try_pop(RankId(1), 7), Some(b"c".to_vec()));
    }

    #[test]
    fn purge_drops_only_matching_tags() {
        let mb = Mailbox::new();
        mb.push(env(0, 0x10, 1));
        mb.push(env(0, 0x10, 2));
        mb.push(env(0, 0x20, 3));
        let dropped = mb.purge_where(|t| t == 0x10);
        assert_eq!(dropped, 2);
        assert_eq!(mb.buffered(), 1);
        assert_eq!(mb.try_pop(RankId(0), 0x20), Some(vec![3]));
    }
}
