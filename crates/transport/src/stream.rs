//! Byte-stream framing for the socket backend.
//!
//! A stream socket delivers a byte *stream*: one `write` on the sender can
//! arrive torn across many `read`s, and many writes can coalesce into one.
//! This module defines the envelope layout the socket backend speaks on a
//! connection and a [`StreamDecoder`] that reassembles envelopes from
//! arbitrarily-split reads.
//!
//! Envelope layout (little-endian):
//!
//! ```text
//! ┌────────┬───────────┬───────────────┐
//! │ kind u8│ len u32 LE│ payload (len) │
//! └────────┴───────────┴───────────────┘
//! ```
//!
//! For [`StreamKind::Data`] the payload is a full wire frame
//! ([`crate::wire`]) — magic, sequence number, and checksum included. The
//! outer length prefix is *trusted transport state* (a TCP/Unix stream does
//! not corrupt bytes in practice), while the inner frame is the layer the
//! seeded [`crate::PerturbPlan`] perturbs; keeping the two separate means a
//! simulated bit-flip can never desynchronize the stream itself, exactly
//! like a corrupted packet payload doesn't desynchronize TCP.
//!
//! The decoder never panics on hostile input: an unknown kind or an
//! oversized length yields a [`StreamError`], and a connection that ends in
//! the middle of an envelope yields [`StreamError::TruncatedStream`] from
//! [`StreamDecoder::finish`] — never a partial envelope.

/// Envelope kinds carried on a socket connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum StreamKind {
    /// A wire frame (checksummed, sequence-numbered application payload).
    Data = 1,
    /// Acknowledgment of a received frame: payload is `[tag u64][seq u64]`.
    Ack = 2,
    /// First envelope on a dialed connection: payload is `[rank u64]`.
    Hello = 3,
    /// Out-of-band control-plane signal (opaque to the transport).
    Signal = 4,
    /// "You have been suspected dead" — the receiver marks *itself* dead.
    Die = 5,
    /// Clean goodbye: the sender is retiring voluntarily.
    Bye = 6,
}

impl StreamKind {
    fn from_u8(b: u8) -> Option<Self> {
        match b {
            1 => Some(Self::Data),
            2 => Some(Self::Ack),
            3 => Some(Self::Hello),
            4 => Some(Self::Signal),
            5 => Some(Self::Die),
            6 => Some(Self::Bye),
            _ => None,
        }
    }
}

/// One decoded envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamEnvelope {
    /// What the payload is.
    pub kind: StreamKind,
    /// The payload bytes (a wire frame for [`StreamKind::Data`]).
    pub payload: Vec<u8>,
}

/// Decoding failures. All are fatal for the connection: the stream can no
/// longer be trusted to be in sync.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamError {
    /// The kind byte is not a known [`StreamKind`].
    UnknownKind(u8),
    /// The length prefix exceeds [`MAX_ENVELOPE_LEN`].
    Oversized(u32),
    /// The stream ended mid-envelope (a torn final frame).
    TruncatedStream {
        /// Bytes of the incomplete envelope left in the buffer.
        leftover: usize,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::UnknownKind(k) => write!(f, "unknown stream envelope kind {k}"),
            StreamError::Oversized(n) => write!(f, "envelope length {n} exceeds limit"),
            StreamError::TruncatedStream { leftover } => {
                write!(f, "stream ended mid-envelope ({leftover} bytes leftover)")
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// Upper bound on a single envelope's payload. Far above any frame the
/// collectives produce; its purpose is to turn a desynchronized (or
/// hostile) length prefix into an error instead of an unbounded allocation.
pub const MAX_ENVELOPE_LEN: u32 = 64 * 1024 * 1024;

/// Bytes of envelope header (kind + length prefix).
pub const ENVELOPE_HEADER: usize = 5;

/// Encode one envelope.
pub fn encode_envelope(kind: StreamKind, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_ENVELOPE_LEN as usize,
        "envelope payload too large"
    );
    let mut out = Vec::with_capacity(ENVELOPE_HEADER + payload.len());
    out.push(kind as u8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Incremental envelope reassembler for one connection.
///
/// Feed it whatever the socket read returned ([`StreamDecoder::push`]),
/// then drain complete envelopes with [`StreamDecoder::next_envelope`].
/// When the connection closes, [`StreamDecoder::finish`] distinguishes a
/// clean boundary from a torn final envelope.
#[derive(Debug, Default)]
pub struct StreamDecoder {
    buf: Vec<u8>,
    /// Read cursor into `buf`; consumed prefix is compacted away lazily.
    pos: usize,
}

impl StreamDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append freshly-read bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing so the buffer stays bounded by the largest
        // in-flight envelope, not the connection's lifetime traffic.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet decoded.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Try to decode the next complete envelope. `Ok(None)` means "need
    /// more bytes"; errors are fatal for the connection.
    pub fn next_envelope(&mut self) -> Result<Option<StreamEnvelope>, StreamError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < ENVELOPE_HEADER {
            return Ok(None);
        }
        let kind_byte = avail[0];
        let Some(kind) = StreamKind::from_u8(kind_byte) else {
            return Err(StreamError::UnknownKind(kind_byte));
        };
        let len = u32::from_le_bytes([avail[1], avail[2], avail[3], avail[4]]);
        if len > MAX_ENVELOPE_LEN {
            return Err(StreamError::Oversized(len));
        }
        let total = ENVELOPE_HEADER + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = avail[ENVELOPE_HEADER..total].to_vec();
        self.pos += total;
        Ok(Some(StreamEnvelope { kind, payload }))
    }

    /// The connection closed: a clean close must land exactly on an
    /// envelope boundary. Leftover bytes mean the final envelope was torn
    /// off mid-flight — reported as an error, never as a partial envelope.
    pub fn finish(&self) -> Result<(), StreamError> {
        match self.pending() {
            0 => Ok(()),
            leftover => Err(StreamError::TruncatedStream { leftover }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single() {
        let mut d = StreamDecoder::new();
        d.push(&encode_envelope(StreamKind::Data, b"payload"));
        let e = d.next_envelope().unwrap().unwrap();
        assert_eq!(e.kind, StreamKind::Data);
        assert_eq!(e.payload, b"payload");
        assert!(d.next_envelope().unwrap().is_none());
        d.finish().unwrap();
    }

    #[test]
    fn torn_and_coalesced_reads() {
        let a = encode_envelope(StreamKind::Ack, &[1; 16]);
        let b = encode_envelope(StreamKind::Data, &[2; 300]);
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        let mut d = StreamDecoder::new();
        // Feed one byte at a time: every envelope must still come out whole.
        let mut out = Vec::new();
        for byte in joined {
            d.push(&[byte]);
            while let Some(e) = d.next_envelope().unwrap() {
                out.push(e);
            }
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].payload, vec![1; 16]);
        assert_eq!(out[1].payload, vec![2; 300]);
        d.finish().unwrap();
    }

    #[test]
    fn empty_payload_ok() {
        let mut d = StreamDecoder::new();
        d.push(&encode_envelope(StreamKind::Bye, b""));
        let e = d.next_envelope().unwrap().unwrap();
        assert_eq!(e.kind, StreamKind::Bye);
        assert!(e.payload.is_empty());
    }

    #[test]
    fn unknown_kind_is_error() {
        let mut d = StreamDecoder::new();
        d.push(&[99, 0, 0, 0, 0]);
        assert_eq!(d.next_envelope(), Err(StreamError::UnknownKind(99)));
    }

    #[test]
    fn oversized_length_is_error() {
        let mut d = StreamDecoder::new();
        let mut bytes = vec![StreamKind::Data as u8];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        d.push(&bytes);
        assert_eq!(d.next_envelope(), Err(StreamError::Oversized(u32::MAX)));
    }

    #[test]
    fn truncated_tail_reported_on_finish() {
        let full = encode_envelope(StreamKind::Data, &[7; 32]);
        let mut d = StreamDecoder::new();
        d.push(&full[..full.len() - 5]);
        assert!(d.next_envelope().unwrap().is_none());
        assert!(matches!(
            d.finish(),
            Err(StreamError::TruncatedStream { leftover }) if leftover > 0
        ));
    }
}
