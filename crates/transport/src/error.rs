//! Transport-level errors, mirroring the error classes ULFM reports
//! per-operation.

use crate::ids::RankId;
use std::fmt;

/// Errors returned by point-to-point operations on the [`crate::Fabric`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The peer the operation needed is dead (ULFM's `MPI_ERR_PROC_FAILED`).
    PeerDead(RankId),
    /// The calling rank itself has been scripted to die at this fault point.
    /// Callers must unwind promptly; the rank is already marked dead in the
    /// alive table.
    SelfDied,
    /// The addressed rank id was never registered with the fabric.
    UnknownRank(RankId),
    /// A blocking receive exceeded its deadline. Only produced when a
    /// deadline was explicitly requested; the default receive blocks
    /// until a message arrives or the peer dies.
    Timeout,
    /// A blocking receive was interrupted by an external stop condition
    /// (the ULFM layer uses this to surface communicator revocation).
    Stopped,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::PeerDead(r) => write!(f, "peer {r} has failed"),
            TransportError::SelfDied => write!(f, "this rank was killed by the fault plan"),
            TransportError::UnknownRank(r) => write!(f, "rank {r} is not registered"),
            TransportError::Timeout => write!(f, "receive timed out"),
            TransportError::Stopped => write!(f, "receive interrupted by stop condition"),
        }
    }
}

impl std::error::Error for TransportError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            TransportError::PeerDead(RankId(3)).to_string(),
            "peer r3 has failed"
        );
        assert!(TransportError::SelfDied.to_string().contains("killed"));
        assert!(TransportError::Timeout.to_string().contains("timed out"));
    }
}
