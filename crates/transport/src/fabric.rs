//! The shared fabric: rank registry, alive table, message routing, and the
//! failure-injection hooks — plus [`InProcBackend`], the in-process
//! implementation of the [`Backend`] trait over this machinery.

use crate::backend::{Backend, SignalHandler};
use crate::error::TransportError;
use crate::fault::FaultInjector;
use crate::ids::{NodeId, RankId, Topology};
use crate::mailbox::{FrameAck, Mailbox};
use crate::perturb::{PerturbPlan, Perturber};
use crate::wire;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use telemetry::{Counter, Histogram};

struct RankSlot {
    mailbox: Arc<Mailbox>,
    alive: Arc<AtomicBool>,
}

/// Cached telemetry handles — resolved once per backend so the hot
/// send/recv paths pay one relaxed atomic add, not a registry lookup.
/// Shared by the in-process fabric and the socket backend: both report
/// under the same `transport.*` metric names.
pub(crate) struct FabricTelemetry {
    pub(crate) msgs_sent: Arc<Counter>,
    pub(crate) bytes_sent: Arc<Counter>,
    pub(crate) msgs_recvd: Arc<Counter>,
    pub(crate) bytes_recvd: Arc<Counter>,
    pub(crate) deaths: Arc<Counter>,
    pub(crate) fault_point_hits: Arc<Counter>,
    pub(crate) op_fault_hits: Arc<Counter>,
    pub(crate) purged_msgs: Arc<Counter>,
    pub(crate) recv_timeouts: Arc<Counter>,
    pub(crate) retransmits: Arc<Counter>,
    pub(crate) corrupt_frames: Arc<Counter>,
    pub(crate) dup_suppressed: Arc<Counter>,
    pub(crate) frames_dropped: Arc<Counter>,
    pub(crate) frames_delayed: Arc<Counter>,
    pub(crate) frames_duplicated: Arc<Counter>,
    pub(crate) frames_reordered: Arc<Counter>,
    pub(crate) suspicions: Arc<Counter>,
    pub(crate) suspicion_coalesced: Arc<Counter>,
    pub(crate) delay_hist: Arc<Histogram>,
    pub(crate) backoff_hist: Arc<Histogram>,
}

impl FabricTelemetry {
    pub(crate) fn new() -> Self {
        Self {
            msgs_sent: telemetry::counter("transport.msgs_sent"),
            bytes_sent: telemetry::counter("transport.bytes_sent"),
            msgs_recvd: telemetry::counter("transport.msgs_recvd"),
            bytes_recvd: telemetry::counter("transport.bytes_recvd"),
            deaths: telemetry::counter("transport.deaths"),
            fault_point_hits: telemetry::counter("transport.fault_point_hits"),
            op_fault_hits: telemetry::counter("transport.op_fault_hits"),
            purged_msgs: telemetry::counter("transport.purged_msgs"),
            recv_timeouts: telemetry::counter("transport.recv_timeouts"),
            retransmits: telemetry::counter("transport.retransmits"),
            corrupt_frames: telemetry::counter("transport.corrupt_frames"),
            dup_suppressed: telemetry::counter("transport.dup_suppressed"),
            frames_dropped: telemetry::counter("transport.perturb.frames_dropped"),
            frames_delayed: telemetry::counter("transport.perturb.frames_delayed"),
            frames_duplicated: telemetry::counter("transport.perturb.frames_duplicated"),
            frames_reordered: telemetry::counter("transport.perturb.frames_reordered"),
            suspicions: telemetry::counter("transport.suspicions"),
            suspicion_coalesced: telemetry::counter("transport.suspicion.coalesced"),
            delay_hist: telemetry::histogram("transport.perturb.delay_ns"),
            backoff_hist: telemetry::histogram("transport.retransmit.backoff_ns"),
        }
    }
}

/// Aggregate traffic counters (diagnostics and cost calibration).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Messages successfully delivered.
    pub messages: u64,
    /// Payload bytes successfully delivered.
    pub bytes: u64,
    /// Ranks killed so far (externally or by the fault plan).
    pub deaths: u64,
    /// Link-layer retransmissions (unacked frames resent).
    pub retransmits: u64,
    /// Frames discarded by the receiver for failing checksum validation.
    pub corrupt_frames: u64,
    /// Duplicate frames suppressed by receiver sequence tracking.
    pub dup_suppressed: u64,
    /// Ranks declared dead by timeout-based suspicion rather than a fault
    /// plan or an explicit kill.
    pub suspicions: u64,
}

/// Deterministic per-rank jitter for suspicion timeouts: stretches `t` by
/// up to 25%, keyed only on the observing rank's id (a SplitMix-style hash
/// of the rank, top byte as the jitter fraction). When a whole node dies,
/// every survivor blocked on it would otherwise hit the suspicion deadline
/// in the same instant and fire a synchronized storm of redundant revokes;
/// skewing the deadlines deterministically lets the earliest observer
/// suspect first and the rest coalesce (`transport.suspicion.coalesced`).
/// Deterministic so test runs and fault schedules stay reproducible.
pub(crate) fn suspicion_jitter(rank: RankId, t: Duration) -> Duration {
    let h = (rank.0 as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 56;
    t + t.mul_f64(h as f64 / 255.0 * 0.25)
}

/// The shared interconnect + runtime failure detector.
///
/// One `Fabric` models one job allocation. Ranks are registered dynamically
/// (elastic upscaling spawns new ranks into a running fabric) and are never
/// unregistered — death is a permanent state, as in ULFM.
pub struct Fabric {
    topology: Topology,
    slots: RwLock<Vec<RankSlot>>,
    injector: FaultInjector,
    perturber: RwLock<Arc<Perturber>>,
    /// Sender-side sequence counters per (src, dst, tag) channel.
    tx_seq: Mutex<HashMap<(RankId, RankId, u64), u64>>,
    /// If set, a blocking receive with no explicit deadline that stalls past
    /// this duration suspects the silent peer dead (timeout-based failure
    /// detection). `None` (the default) models a perfect, hang-free network.
    suspicion: RwLock<Option<Duration>>,
    /// Suspicion batching window: after a suspicion lands, further
    /// suspicions within this window belong to the same burst, and
    /// recovery (via `Endpoint::settle_suspicions`) waits the window out
    /// before agreeing on the failed set. `None` disables batching.
    suspicion_batch: RwLock<Option<Duration>>,
    /// When the most recent alive→dead suspicion transition was recorded.
    last_suspicion: Mutex<Option<Instant>>,
    messages: AtomicU64,
    bytes: AtomicU64,
    deaths: AtomicU64,
    retransmits: AtomicU64,
    corrupt_frames: AtomicU64,
    dup_suppressed: AtomicU64,
    suspicions: AtomicU64,
    telem: FabricTelemetry,
}

impl Fabric {
    /// A fabric with the given node topology and fault schedule.
    pub fn new(topology: Topology, injector: FaultInjector) -> Arc<Self> {
        Arc::new(Self {
            topology,
            slots: RwLock::new(Vec::new()),
            injector,
            perturber: RwLock::new(Arc::new(Perturber::inert())),
            tx_seq: Mutex::new(HashMap::new()),
            suspicion: RwLock::new(None),
            suspicion_batch: RwLock::new(None),
            last_suspicion: Mutex::new(None),
            messages: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            deaths: AtomicU64::new(0),
            retransmits: AtomicU64::new(0),
            corrupt_frames: AtomicU64::new(0),
            dup_suppressed: AtomicU64::new(0),
            suspicions: AtomicU64::new(0),
            telem: FabricTelemetry::new(),
        })
    }

    /// A fault-free fabric (convenience for tests).
    pub fn without_faults(topology: Topology) -> Arc<Self> {
        Self::new(topology, FaultInjector::inert())
    }

    /// The node topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The fault injector driving scripted failures.
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Install a message-perturbation plan. Replaces any previous plan;
    /// normally called once before traffic starts.
    pub fn set_perturbation(&self, plan: PerturbPlan) {
        *self.perturber.write() = Arc::new(Perturber::new(plan));
    }

    /// Enable (`Some`) or disable (`None`) timeout-based failure suspicion
    /// for blocking receives without an explicit deadline.
    pub fn set_suspicion_timeout(&self, timeout: Option<Duration>) {
        *self.suspicion.write() = timeout;
    }

    /// The configured suspicion timeout, if any.
    pub fn suspicion_timeout(&self) -> Option<Duration> {
        *self.suspicion.read()
    }

    /// Enable (`Some`) or disable (`None`) the suspicion batching window.
    pub fn set_suspicion_batch_window(&self, window: Option<Duration>) {
        *self.suspicion_batch.write() = window;
    }

    /// The configured suspicion batching window, if any.
    pub fn suspicion_batch_window(&self) -> Option<Duration> {
        *self.suspicion_batch.read()
    }

    /// When the most recent alive→dead suspicion transition was recorded.
    pub fn last_suspicion(&self) -> Option<Instant> {
        *self.last_suspicion.lock()
    }

    /// Declare `rank` dead on suspicion (retry exhaustion or a stalled
    /// receive past the suspicion deadline). Idempotent; counts once —
    /// a re-suspicion of an already-dead rank is *coalesced* (counted
    /// under `transport.suspicion.coalesced`, otherwise a no-op), which
    /// is what keeps a node-level burst from fanning out into a storm of
    /// redundant revokes.
    pub fn suspect(&self, rank: RankId) {
        if self.is_alive(rank) {
            self.suspicions.fetch_add(1, Ordering::Relaxed);
            self.telem.suspicions.incr();
            *self.last_suspicion.lock() = Some(Instant::now());
            self.kill_rank(rank);
        } else {
            self.telem.suspicion_coalesced.incr();
        }
    }

    /// Register one new rank and return its id. Ids are dense and permanent.
    pub fn register_rank(self: &Arc<Self>) -> RankId {
        let mut slots = self.slots.write();
        let id = RankId(slots.len());
        slots.push(RankSlot {
            mailbox: Arc::new(Mailbox::new()),
            alive: Arc::new(AtomicBool::new(true)),
        });
        id
    }

    /// Register `n` ranks at once.
    pub fn register_ranks(self: &Arc<Self>, n: usize) -> Vec<RankId> {
        (0..n).map(|_| self.register_rank()).collect()
    }

    /// Total ranks ever registered (alive or dead).
    pub fn total_ranks(&self) -> usize {
        self.slots.read().len()
    }

    /// Is `rank` registered and alive?
    pub fn is_alive(&self, rank: RankId) -> bool {
        self.slots
            .read()
            .get(rank.0)
            .is_some_and(|s| s.alive.load(Ordering::SeqCst))
    }

    /// Snapshot of all currently-alive ranks, in id order.
    pub fn alive_ranks(&self) -> Vec<RankId> {
        self.slots
            .read()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive.load(Ordering::SeqCst))
            .map(|(i, _)| RankId(i))
            .collect()
    }

    /// Snapshot of all dead ranks, in id order.
    pub fn dead_ranks(&self) -> Vec<RankId> {
        self.slots
            .read()
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.alive.load(Ordering::SeqCst))
            .map(|(i, _)| RankId(i))
            .collect()
    }

    /// Kill a single rank. Idempotent. Wakes every blocked receiver so the
    /// failure is observed promptly (this is the runtime failure detector).
    pub fn kill_rank(&self, rank: RankId) {
        let slots = self.slots.read();
        let Some(slot) = slots.get(rank.0) else {
            return;
        };
        if slot.alive.swap(false, Ordering::SeqCst) {
            self.deaths.fetch_add(1, Ordering::Relaxed);
            self.telem.deaths.incr();
            for s in slots.iter() {
                s.mailbox.wake_waiters();
            }
        }
    }

    /// Wake every blocked receiver so it re-checks its stop conditions.
    /// Called by the ULFM layer when a communicator is revoked.
    pub fn wake_all(&self) {
        for s in self.slots.read().iter() {
            s.mailbox.wake_waiters();
        }
    }

    /// Kill every rank on `node` (the paper's node-level failure).
    pub fn kill_node(&self, node: NodeId) {
        let total = self.total_ranks();
        for rank in self.topology.ranks_on_node(node, total) {
            self.kill_rank(rank);
        }
    }

    /// The node hosting `rank`.
    pub fn node_of(&self, rank: RankId) -> NodeId {
        self.topology.node_of(rank)
    }

    /// Aggregate traffic counters.
    pub fn stats(&self) -> FabricStats {
        FabricStats {
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            deaths: self.deaths.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            corrupt_frames: self.corrupt_frames.load(Ordering::Relaxed),
            dup_suppressed: self.dup_suppressed.load(Ordering::Relaxed),
            suspicions: self.suspicions.load(Ordering::Relaxed),
        }
    }

    fn next_tx_seq(&self, src: RankId, dst: RankId, tag: u64) -> u64 {
        let mut seqs = self.tx_seq.lock();
        let s = seqs.entry((src, dst, tag)).or_insert(0);
        let seq = *s;
        *s += 1;
        seq
    }

    /// One physical transmission attempt of `frame` on `src → dst`, applying
    /// the perturbation plan. Returns true if the receiver acked a copy of
    /// the *current* frame (stashed flushes ack on behalf of older frames,
    /// which already retransmit independently).
    fn transmit(&self, src: RankId, dst: RankId, frame: &[u8], mb: &Mailbox) -> bool {
        let perturber = Arc::clone(&self.perturber.read());
        let verdict = perturber.transmit(src, dst, frame);
        if verdict.dropped {
            self.telem.frames_dropped.incr();
        }
        if verdict.duplicated {
            self.telem.frames_duplicated.incr();
        }
        if verdict.reordered {
            self.telem.frames_reordered.incr();
        }
        let mut acked = false;
        for d in verdict.deliveries {
            if let Some(delay) = d.delay {
                // The "propagation delay" runs on the sender thread: the
                // fabric is a function-call network, so a slow link is a
                // slow call.
                self.telem.frames_delayed.incr();
                self.telem.delay_hist.record_duration(delay);
                std::thread::sleep(delay);
            }
            let ack = mb.accept_frame(&d.bytes);
            match ack {
                FrameAck::Corrupt(_) => {
                    self.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                    self.telem.corrupt_frames.incr();
                }
                FrameAck::Duplicate => {
                    self.dup_suppressed.fetch_add(1, Ordering::Relaxed);
                    self.telem.dup_suppressed.incr();
                }
                FrameAck::Accepted => {}
            }
            if d.current && ack.is_acked() {
                acked = true;
            }
        }
        acked
    }

    fn mailbox_of(&self, rank: RankId) -> Option<Arc<Mailbox>> {
        self.slots
            .read()
            .get(rank.0)
            .map(|s| Arc::clone(&s.mailbox))
    }

    fn alive_flag_of(&self, rank: RankId) -> Option<Arc<AtomicBool>> {
        self.slots.read().get(rank.0).map(|s| Arc::clone(&s.alive))
    }
}

/// The in-process [`Backend`]: one rank's view of a shared [`Fabric`],
/// where ranks are threads and message routing is a function call into the
/// destination's mailbox. This is the seed transport, unchanged in
/// semantics — the [`crate::Endpoint`] wrapper constructs it via
/// [`crate::Endpoint::new`].
pub(crate) struct InProcBackend {
    fabric: Arc<Fabric>,
    rank: RankId,
}

impl InProcBackend {
    /// The backend for `rank` (which must be registered with `fabric`).
    pub(crate) fn new(fabric: Arc<Fabric>, rank: RankId) -> Self {
        assert!(
            rank.0 < fabric.total_ranks(),
            "rank {rank} not registered with the fabric"
        );
        Self { fabric, rank }
    }
}

impl Backend for InProcBackend {
    fn rank(&self) -> RankId {
        self.rank
    }

    fn topology(&self) -> Topology {
        self.fabric.topology()
    }

    fn total_ranks(&self) -> usize {
        self.fabric.total_ranks()
    }

    fn is_alive(&self, rank: RankId) -> bool {
        self.fabric.is_alive(rank)
    }

    fn alive_ranks(&self) -> Vec<RankId> {
        self.fabric.alive_ranks()
    }

    fn suspect(&self, rank: RankId) {
        self.fabric.suspect(rank);
    }

    fn kill_self(&self) {
        self.fabric.kill_rank(self.rank);
    }

    fn wake_all(&self) {
        self.fabric.wake_all();
    }

    fn check_op_fault(&self) -> Result<(), TransportError> {
        if !self.fabric.is_alive(self.rank) {
            return Err(TransportError::SelfDied);
        }
        if self.fabric.injector.hit_op(self.rank) {
            self.fabric.telem.op_fault_hits.incr();
            self.fabric.kill_rank(self.rank);
            return Err(TransportError::SelfDied);
        }
        Ok(())
    }

    fn fault_point(&self, name: &str) -> Result<(), TransportError> {
        if !self.fabric.is_alive(self.rank) {
            return Err(TransportError::SelfDied);
        }
        self.fabric.perturber.read().notify_point(name);
        if self.fabric.injector.hit_point(self.rank, name) {
            self.fabric.telem.fault_point_hits.incr();
            self.fabric.kill_rank(self.rank);
            return Err(TransportError::SelfDied);
        }
        Ok(())
    }

    fn send(&self, to: RankId, tag: u64, data: &[u8]) -> Result<(), TransportError> {
        self.check_op_fault()?;
        let Some(mb) = self.fabric.mailbox_of(to) else {
            return Err(TransportError::UnknownRank(to));
        };
        if !self.fabric.is_alive(to) {
            return Err(TransportError::PeerDead(to));
        }
        let seq = self.fabric.next_tx_seq(self.rank, to, tag);
        let frame = wire::encode_frame(self.rank, tag, seq, data);
        let policy = self.fabric.perturber.read().plan().retry_policy();
        let mut attempt = 0u32;
        loop {
            if self.fabric.transmit(self.rank, to, &frame, &mb) {
                break;
            }
            // Unacked: the frame (or every copy of it) was lost. Re-check
            // liveness between attempts — death reports beat link errors.
            if !self.fabric.is_alive(self.rank) {
                return Err(TransportError::SelfDied);
            }
            if !self.fabric.is_alive(to) {
                return Err(TransportError::PeerDead(to));
            }
            if attempt >= policy.max_retries {
                // The link is silent past the retry budget: suspect the
                // peer, feeding the ULFM revoke → agree → shrink path.
                self.fabric.suspect(to);
                return Err(TransportError::PeerDead(to));
            }
            let salt = self
                .fabric
                .perturber
                .read()
                .backoff_salt(self.rank, to, tag, seq, attempt);
            let backoff = policy.backoff(attempt, salt);
            self.fabric.telem.backoff_hist.record_duration(backoff);
            std::thread::sleep(backoff);
            attempt += 1;
            self.fabric.retransmits.fetch_add(1, Ordering::Relaxed);
            self.fabric.telem.retransmits.incr();
        }
        self.fabric.messages.fetch_add(1, Ordering::Relaxed);
        self.fabric
            .bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.fabric.telem.msgs_sent.incr();
        self.fabric.telem.bytes_sent.add(data.len() as u64);
        Ok(())
    }

    fn recv(
        &self,
        from: RankId,
        tag: u64,
        should_stop: &dyn Fn() -> bool,
        deadline: Option<Instant>,
    ) -> Result<Vec<u8>, TransportError> {
        self.check_op_fault()?;
        let my_mb = self
            .fabric
            .mailbox_of(self.rank)
            .expect("own mailbox must exist");
        let Some(src_alive) = self.fabric.alive_flag_of(from) else {
            return Err(TransportError::UnknownRank(from));
        };
        let self_alive = self
            .fabric
            .alive_flag_of(self.rank)
            .expect("own alive flag must exist");
        // Without an explicit deadline, an open-ended wait is bounded by the
        // suspicion timeout (when configured): a peer silent past it is
        // treated as failed, not merely slow. Per-rank jitter desynchronizes
        // the deadlines so a node-level death is suspected once and
        // coalesced everywhere else.
        let suspicion = match deadline {
            Some(_) => None,
            None => self
                .fabric
                .suspicion_timeout()
                .map(|t| suspicion_jitter(self.rank, t)),
        };
        let effective = deadline.or_else(|| suspicion.map(|t| Instant::now() + t));
        use crate::mailbox::RecvOutcome;
        match my_mb.pop_matching(
            from,
            tag,
            || src_alive.load(Ordering::SeqCst),
            || self_alive.load(Ordering::SeqCst),
            should_stop,
            effective,
        ) {
            RecvOutcome::Message(data) => {
                self.fabric.telem.msgs_recvd.incr();
                self.fabric.telem.bytes_recvd.add(data.len() as u64);
                Ok(data)
            }
            RecvOutcome::SrcDead => Err(TransportError::PeerDead(from)),
            RecvOutcome::SelfDead => Err(TransportError::SelfDied),
            RecvOutcome::Stopped => Err(TransportError::Stopped),
            RecvOutcome::TimedOut => {
                if suspicion.is_some() {
                    // The stall exceeded the failure detector's deadline:
                    // declare the silent peer dead and report it as such.
                    self.fabric.suspect(from);
                    return Err(TransportError::PeerDead(from));
                }
                self.fabric.telem.recv_timeouts.incr();
                Err(TransportError::Timeout)
            }
        }
    }

    fn try_recv(&self, from: RankId, tag: u64) -> Option<Vec<u8>> {
        self.fabric
            .mailbox_of(self.rank)
            .and_then(|mb| mb.try_pop(from, tag))
    }

    fn probe(&self, from: RankId, tag: u64) -> bool {
        self.fabric
            .mailbox_of(self.rank)
            .is_some_and(|mb| mb.probe(from, tag))
    }

    fn purge_tags(&self, pred: &dyn Fn(u64) -> bool) -> usize {
        let purged = self
            .fabric
            .mailbox_of(self.rank)
            .map(|mb| mb.purge_where(pred))
            .unwrap_or(0);
        self.fabric.telem.purged_msgs.add(purged as u64);
        purged
    }

    fn set_perturbation(&self, plan: PerturbPlan) {
        self.fabric.set_perturbation(plan);
    }

    fn set_suspicion_timeout(&self, timeout: Option<Duration>) {
        self.fabric.set_suspicion_timeout(timeout);
    }

    fn suspicion_timeout(&self) -> Option<Duration> {
        self.fabric.suspicion_timeout()
    }

    fn last_suspicion(&self) -> Option<Instant> {
        self.fabric.last_suspicion()
    }

    fn suspicion_batch_window(&self) -> Option<Duration> {
        self.fabric.suspicion_batch_window()
    }

    fn set_suspicion_batch_window(&self, window: Option<Duration>) {
        self.fabric.set_suspicion_batch_window(window);
    }

    fn broadcast_signal(&self, _payload: &[u8]) {
        // The in-process control plane *is* shared memory: revocation state
        // lives in one `Shared` and death wakes travel via `wake_all`.
    }

    fn set_signal_handler(&self, _handler: SignalHandler) {
        // No out-of-band signals in process; nothing will ever invoke it.
    }

    fn stats(&self) -> FabricStats {
        self.fabric.stats()
    }

    fn shutdown(&self) {
        // The fabric is shared by every rank in the job; it is torn down by
        // dropping the last Arc, not by any single rank's endpoint.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Endpoint;
    use crate::fault::FaultPlan;

    fn fabric_with(n: usize) -> (Arc<Fabric>, Vec<Endpoint>) {
        let f = Fabric::without_faults(Topology::flat());
        let ranks = f.register_ranks(n);
        let eps = ranks
            .into_iter()
            .map(|r| Endpoint::new(Arc::clone(&f), r))
            .collect();
        (f, eps)
    }

    #[test]
    fn send_recv_roundtrip() {
        let (_f, eps) = fabric_with(2);
        eps[0].send(RankId(1), 9, b"hello").unwrap();
        assert_eq!(eps[1].recv(RankId(0), 9).unwrap(), b"hello");
    }

    #[test]
    fn send_to_dead_peer_reports_proc_failed() {
        let (f, eps) = fabric_with(2);
        f.kill_rank(RankId(1));
        assert_eq!(
            eps[0].send(RankId(1), 0, b"x"),
            Err(TransportError::PeerDead(RankId(1)))
        );
    }

    #[test]
    fn recv_from_dead_peer_after_drain() {
        let (f, eps) = fabric_with(2);
        eps[1].send(RankId(0), 3, b"last words").unwrap();
        f.kill_rank(RankId(1));
        // Buffered message first ...
        assert_eq!(eps[0].recv(RankId(1), 3).unwrap(), b"last words");
        // ... then the failure is reported.
        assert_eq!(
            eps[0].recv(RankId(1), 3),
            Err(TransportError::PeerDead(RankId(1)))
        );
    }

    #[test]
    fn blocked_recv_is_woken_by_death() {
        let (f, eps) = fabric_with(2);
        let e0 = eps[0].clone();
        let t = std::thread::spawn(move || e0.recv(RankId(1), 1));
        std::thread::sleep(Duration::from_millis(30));
        f.kill_rank(RankId(1));
        assert_eq!(t.join().unwrap(), Err(TransportError::PeerDead(RankId(1))));
    }

    #[test]
    fn scripted_death_at_op_count() {
        let plan = FaultPlan::none().kill_at_op(RankId(0), 2);
        let f = Fabric::new(Topology::flat(), FaultInjector::new(plan));
        let ranks = f.register_ranks(2);
        let e0 = Endpoint::new(Arc::clone(&f), ranks[0]);
        assert!(e0.send(RankId(1), 0, b"a").is_ok());
        assert_eq!(e0.send(RankId(1), 0, b"b"), Err(TransportError::SelfDied));
        assert!(!f.is_alive(RankId(0)));
    }

    #[test]
    fn scripted_death_at_fault_point() {
        let plan = FaultPlan::none().kill_at_point(RankId(0), "allreduce.step", 1);
        let f = Fabric::new(Topology::flat(), FaultInjector::new(plan));
        let r = f.register_rank();
        let e = Endpoint::new(Arc::clone(&f), r);
        assert_eq!(e.fault_point("other"), Ok(()));
        assert_eq!(
            e.fault_point("allreduce.step"),
            Err(TransportError::SelfDied)
        );
        assert!(!e.is_self_alive());
    }

    #[test]
    fn dead_rank_cannot_operate() {
        let (f, eps) = fabric_with(2);
        f.kill_rank(RankId(0));
        assert_eq!(
            eps[0].send(RankId(1), 0, b"x"),
            Err(TransportError::SelfDied)
        );
        assert_eq!(eps[0].recv(RankId(1), 0), Err(TransportError::SelfDied));
    }

    #[test]
    fn kill_node_kills_colocated_ranks_only() {
        let f = Fabric::without_faults(Topology::new(3));
        f.register_ranks(6);
        f.kill_node(NodeId(0));
        assert_eq!(f.alive_ranks(), vec![RankId(3), RankId(4), RankId(5)]);
        assert_eq!(f.dead_ranks(), vec![RankId(0), RankId(1), RankId(2)]);
        assert_eq!(f.stats().deaths, 3);
    }

    #[test]
    fn kill_is_idempotent() {
        let (f, _) = fabric_with(2);
        f.kill_rank(RankId(1));
        f.kill_rank(RankId(1));
        assert_eq!(f.stats().deaths, 1);
    }

    #[test]
    fn unknown_rank_errors() {
        let (_f, eps) = fabric_with(1);
        assert_eq!(
            eps[0].send(RankId(42), 0, b"x"),
            Err(TransportError::UnknownRank(RankId(42)))
        );
        assert_eq!(
            eps[0].recv(RankId(42), 0),
            Err(TransportError::UnknownRank(RankId(42)))
        );
    }

    #[test]
    fn dynamic_registration_grows_fabric() {
        let (f, eps) = fabric_with(2);
        let newcomer = f.register_rank();
        assert_eq!(newcomer, RankId(2));
        let e2 = Endpoint::new(Arc::clone(&f), newcomer);
        e2.send(RankId(0), 5, b"joined").unwrap();
        assert_eq!(eps[0].recv(newcomer, 5).unwrap(), b"joined");
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let (f, eps) = fabric_with(2);
        eps[0].send(RankId(1), 0, &[0u8; 10]).unwrap();
        eps[0].send(RankId(1), 0, &[0u8; 32]).unwrap();
        let s = f.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 42);
    }

    #[test]
    fn recv_timeout_expires() {
        let (_f, eps) = fabric_with(2);
        assert_eq!(
            eps[0].recv_timeout(RankId(1), 0, Duration::from_millis(15)),
            Err(TransportError::Timeout)
        );
    }

    #[test]
    fn retire_marks_self_dead() {
        let (f, eps) = fabric_with(2);
        eps[1].retire();
        assert!(!f.is_alive(RankId(1)));
        assert!(f.is_alive(RankId(0)));
    }

    #[test]
    fn lossy_link_heals_via_retransmission() {
        use crate::perturb::{LinkPerturb, PerturbPlan, RetryPolicy};
        let (f, eps) = fabric_with(2);
        f.set_perturbation(
            PerturbPlan::seeded(11)
                .all_links(LinkPerturb::clean().drop(0.4).duplicate(0.2).corrupt(0.2))
                .retry(RetryPolicy {
                    max_retries: 32,
                    base: Duration::from_micros(20),
                    cap: Duration::from_micros(500),
                }),
        );
        for i in 0..100u64 {
            eps[0].send(RankId(1), 9, &i.to_le_bytes()).unwrap();
        }
        for i in 0..100u64 {
            assert_eq!(eps[1].recv(RankId(0), 9).unwrap(), i.to_le_bytes());
        }
        let s = f.stats();
        assert!(s.retransmits > 0, "a 40% drop rate must force retransmits");
        assert_eq!(s.messages, 100, "every payload delivered exactly once");
        assert_eq!(s.deaths, 0);
    }

    #[test]
    fn total_link_loss_turns_into_suspicion() {
        use crate::perturb::{LinkPerturb, PerturbPlan, RetryPolicy};
        let (f, eps) = fabric_with(2);
        f.set_perturbation(
            PerturbPlan::seeded(5)
                .link(RankId(0), RankId(1), LinkPerturb::clean().drop(1.0))
                .retry(RetryPolicy {
                    max_retries: 4,
                    base: Duration::from_micros(50),
                    cap: Duration::from_micros(200),
                }),
        );
        assert_eq!(
            eps[0].send(RankId(1), 0, b"void"),
            Err(TransportError::PeerDead(RankId(1)))
        );
        assert!(!f.is_alive(RankId(1)), "unreachable peer must be suspected");
        assert_eq!(f.stats().suspicions, 1);
    }

    #[test]
    fn stalled_recv_suspects_silent_peer() {
        let (f, eps) = fabric_with(2);
        f.set_suspicion_timeout(Some(Duration::from_millis(20)));
        let start = Instant::now();
        // Rank 1 never sends: the stall converts to a PeerDead report.
        assert_eq!(
            eps[0].recv(RankId(1), 3),
            Err(TransportError::PeerDead(RankId(1)))
        );
        assert!(start.elapsed() < Duration::from_secs(1));
        assert!(!f.is_alive(RankId(1)));
        assert_eq!(f.stats().suspicions, 1);
    }

    #[test]
    fn explicit_recv_timeout_does_not_suspect() {
        let (f, eps) = fabric_with(2);
        f.set_suspicion_timeout(Some(Duration::from_millis(5)));
        // An explicit deadline is the caller's own polling timeout (the gloo
        // op-timeout path); it must stay a plain Timeout with no kill.
        assert_eq!(
            eps[0].recv_timeout(RankId(1), 0, Duration::from_millis(10)),
            Err(TransportError::Timeout)
        );
        assert!(f.is_alive(RankId(1)));
        assert_eq!(f.stats().suspicions, 0);
    }

    #[test]
    fn suspected_rank_observes_own_death_while_blocked() {
        let (f, eps) = fabric_with(3);
        f.set_suspicion_timeout(Some(Duration::from_millis(15)));
        // Rank 1 blocks forever on a channel nobody serves; rank 0 suspects
        // it in parallel. The blocked thread must wake with SelfDied.
        let e1 = eps[1].clone();
        let t = std::thread::spawn(move || e1.recv(RankId(2), 99));
        std::thread::sleep(Duration::from_millis(5));
        f.suspect(RankId(1));
        assert_eq!(t.join().unwrap(), Err(TransportError::SelfDied));
    }

    #[test]
    fn suspicion_jitter_is_deterministic_and_bounded() {
        let base = Duration::from_millis(40);
        for r in 0..256 {
            let j = suspicion_jitter(RankId(r), base);
            // Deterministic: same rank, same stretch.
            assert_eq!(j, suspicion_jitter(RankId(r), base));
            assert!(j >= base, "jitter must never shrink the timeout");
            assert!(j <= base + base.mul_f64(0.25), "jitter bounded at +25%");
        }
        // Neighboring ranks land on different deadlines (the whole point:
        // no synchronized suspicion storm on a node-level death).
        assert_ne!(
            suspicion_jitter(RankId(1), base),
            suspicion_jitter(RankId(2), base)
        );
    }

    #[test]
    fn repeat_suspicion_is_coalesced() {
        let (f, _eps) = fabric_with(3);
        let coalesced = telemetry::counter("transport.suspicion.coalesced");
        let before = coalesced.get();
        f.suspect(RankId(2));
        assert_eq!(f.stats().suspicions, 1);
        assert!(f.last_suspicion().is_some());
        // Every further observer of the same death coalesces: no new
        // suspicion count, no new revoke trigger.
        f.suspect(RankId(2));
        f.suspect(RankId(2));
        assert_eq!(f.stats().suspicions, 1);
        assert_eq!(coalesced.get() - before, 2);
    }

    #[test]
    fn settle_suspicions_waits_out_the_batch_window() {
        let (f, eps) = fabric_with(3);
        // No window configured: settle is a no-op even after a suspicion.
        f.suspect(RankId(1));
        let t0 = Instant::now();
        eps[0].settle_suspicions();
        assert!(t0.elapsed() < Duration::from_millis(10));
        // With a window, settling blocks until the last suspicion is at
        // least a window old.
        f.set_suspicion_batch_window(Some(Duration::from_millis(25)));
        f.suspect(RankId(2));
        let t1 = Instant::now();
        eps[0].settle_suspicions();
        assert!(t1.elapsed() >= Duration::from_millis(20));
        // Already settled: a second call returns immediately.
        let t2 = Instant::now();
        eps[0].settle_suspicions();
        assert!(t2.elapsed() < Duration::from_millis(10));
    }

    #[test]
    fn gated_perturbation_activates_at_fault_point() {
        use crate::perturb::{LinkPerturb, PerturbPlan, RetryPolicy};
        let (f, eps) = fabric_with(2);
        f.set_perturbation(
            PerturbPlan::seeded(3)
                .all_links(LinkPerturb::clean().drop(1.0))
                .retry(RetryPolicy {
                    max_retries: 2,
                    base: Duration::from_micros(20),
                    cap: Duration::from_micros(50),
                })
                .active_from_point("phase.two"),
        );
        eps[0].send(RankId(1), 0, b"clean").unwrap();
        eps[0].fault_point("phase.two").unwrap();
        assert_eq!(
            eps[0].send(RankId(1), 0, b"lost"),
            Err(TransportError::PeerDead(RankId(1)))
        );
    }
}
