//! Scripted fault injection.
//!
//! Experiments in the paper kill a worker (or a whole node) at a chosen
//! moment — for example in the middle of the gradient allreduce of some
//! mini-batch. [`FaultPlan`] expresses such schedules deterministically:
//! a rank dies when its *operation counter* reaches a value, or at the
//! n-th occurrence of a *named fault point* (e.g. `"allreduce.step"`).
//! Deterministic schedules make every failure test reproducible.

use crate::ids::RankId;
use parking_lot::Mutex;
use std::collections::HashMap;

/// One scripted failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Kill `rank` when its transport-operation counter (sends + receives)
    /// reaches `count` (1-based: `count == 1` dies on the first operation).
    AtOpCount {
        /// Victim rank.
        rank: RankId,
        /// Operation index at which the rank dies.
        count: u64,
    },
    /// Kill `rank` at the `occurrence`-th (1-based) hit of the named fault
    /// point. Upper layers place fault points at semantically meaningful
    /// spots (collective entry, per-step boundaries, ...).
    AtPoint {
        /// Victim rank.
        rank: RankId,
        /// Fault-point name, e.g. `"allreduce.step"`.
        point: String,
        /// Which occurrence of the point triggers death (1-based).
        occurrence: u64,
    },
}

/// A deterministic failure schedule.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    triggers: Vec<FaultTrigger>,
}

impl FaultPlan {
    /// An empty plan: nobody dies.
    pub fn none() -> Self {
        Self::default()
    }

    /// Add a kill-at-op-count trigger.
    pub fn kill_at_op(mut self, rank: RankId, count: u64) -> Self {
        self.triggers.push(FaultTrigger::AtOpCount { rank, count });
        self
    }

    /// Add a kill-at-named-point trigger.
    pub fn kill_at_point(
        mut self,
        rank: RankId,
        point: impl Into<String>,
        occurrence: u64,
    ) -> Self {
        self.triggers.push(FaultTrigger::AtPoint {
            rank,
            point: point.into(),
            occurrence,
        });
        self
    }

    /// All triggers in the plan.
    pub fn triggers(&self) -> &[FaultTrigger] {
        &self.triggers
    }

    /// Absorb every trigger of `other`. Lets callers compose schedules —
    /// e.g. a scenario's scripted victim plus extra cascade kills injected
    /// during recovery.
    pub fn merge(mut self, other: FaultPlan) -> Self {
        self.triggers.extend(other.triggers);
        self
    }

    /// Does the plan script anything at all?
    pub fn is_empty(&self) -> bool {
        self.triggers.is_empty()
    }
}

#[derive(Default)]
struct Counters {
    ops: HashMap<RankId, u64>,
    points: HashMap<(RankId, String), u64>,
    fired: Vec<FaultTrigger>,
}

/// Shared runtime state evaluating a [`FaultPlan`].
///
/// The fabric consults the injector on every send/receive; higher layers
/// additionally call [`FaultInjector::hit_point`] at protocol-level fault
/// points. A `true` return means "this rank dies *now*": the caller must
/// mark the rank dead and unwind.
pub struct FaultInjector {
    state: Mutex<(FaultPlan, Counters)>,
}

impl FaultInjector {
    /// Build an injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            state: Mutex::new((plan, Counters::default())),
        }
    }

    /// An injector that never fires.
    pub fn inert() -> Self {
        Self::new(FaultPlan::none())
    }

    /// Add more triggers while the system is running (used by elastic
    /// drivers that script multiple failures over a training run).
    pub fn arm(&self, trigger: FaultTrigger) {
        self.state.lock().0.triggers.push(trigger);
    }

    /// Record one transport operation by `rank`; returns `true` if the rank
    /// must die at this operation.
    pub fn hit_op(&self, rank: RankId) -> bool {
        let mut st = self.state.lock();
        let c = st.1.ops.entry(rank).or_insert(0);
        *c += 1;
        let count = *c;
        let (plan, counters) = &mut *st;
        let fired = plan
            .triggers
            .iter()
            .find(|t| matches!(t, FaultTrigger::AtOpCount { rank: r, count: k } if *r == rank && *k == count))
            .cloned();
        if let Some(t) = fired {
            counters.fired.push(t);
            true
        } else {
            false
        }
    }

    /// Record a hit of the named fault point by `rank`; returns `true` if the
    /// rank must die here.
    pub fn hit_point(&self, rank: RankId, point: &str) -> bool {
        let mut st = self.state.lock();
        let key = (rank, point.to_string());
        let c = st.1.points.entry(key).or_insert(0);
        *c += 1;
        let occ = *c;
        let (plan, counters) = &mut *st;
        let fired = plan
            .triggers
            .iter()
            .find(|t| matches!(t, FaultTrigger::AtPoint { rank: r, point: p, occurrence } if *r == rank && p == point && *occurrence == occ))
            .cloned();
        if let Some(t) = fired {
            counters.fired.push(t);
            true
        } else {
            false
        }
    }

    /// Triggers that have fired so far (for test assertions).
    pub fn fired(&self) -> Vec<FaultTrigger> {
        self.state.lock().1.fired.clone()
    }

    /// Does the plan contain any trigger for `rank`?
    pub fn is_armed_for(&self, rank: RankId) -> bool {
        self.state.lock().0.triggers.iter().any(|t| match t {
            FaultTrigger::AtOpCount { rank: r, .. } => *r == rank,
            FaultTrigger::AtPoint { rank: r, .. } => *r == rank,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_trigger_fires_exactly_once_at_count() {
        let inj = FaultInjector::new(FaultPlan::none().kill_at_op(RankId(2), 3));
        assert!(!inj.hit_op(RankId(2)));
        assert!(!inj.hit_op(RankId(2)));
        assert!(inj.hit_op(RankId(2)));
        assert!(!inj.hit_op(RankId(2)));
        assert_eq!(inj.fired().len(), 1);
    }

    #[test]
    fn op_counters_are_per_rank() {
        let inj = FaultInjector::new(FaultPlan::none().kill_at_op(RankId(1), 2));
        assert!(!inj.hit_op(RankId(0)));
        assert!(!inj.hit_op(RankId(0)));
        assert!(!inj.hit_op(RankId(1)));
        assert!(inj.hit_op(RankId(1)));
    }

    #[test]
    fn point_trigger_counts_occurrences() {
        let inj =
            FaultInjector::new(FaultPlan::none().kill_at_point(RankId(0), "allreduce.step", 2));
        assert!(!inj.hit_point(RankId(0), "allreduce.step"));
        assert!(!inj.hit_point(RankId(0), "other"));
        assert!(inj.hit_point(RankId(0), "allreduce.step"));
    }

    #[test]
    fn arm_adds_triggers_at_runtime() {
        let inj = FaultInjector::inert();
        assert!(!inj.is_armed_for(RankId(4)));
        inj.arm(FaultTrigger::AtOpCount {
            rank: RankId(4),
            count: 1,
        });
        assert!(inj.is_armed_for(RankId(4)));
        assert!(inj.hit_op(RankId(4)));
    }

    #[test]
    fn merge_composes_schedules() {
        let a = FaultPlan::none().kill_at_op(RankId(0), 5);
        let b = FaultPlan::none().kill_at_point(RankId(1), "shrink.attempt", 1);
        let merged = a.merge(b);
        assert_eq!(merged.triggers().len(), 2);
        assert!(!merged.is_empty());
        assert!(FaultPlan::none().is_empty());
        let inj = FaultInjector::new(merged);
        assert!(inj.is_armed_for(RankId(0)));
        assert!(inj.is_armed_for(RankId(1)));
        assert!(inj.hit_point(RankId(1), "shrink.attempt"));
    }

    #[test]
    fn inert_never_fires() {
        let inj = FaultInjector::inert();
        for i in 0..100 {
            assert!(!inj.hit_op(RankId(i % 4)));
        }
        assert!(inj.fired().is_empty());
    }
}
