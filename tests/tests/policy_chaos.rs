//! Chaos schedules for the recovery-policy layer ("Chameleon mode"):
//! every arm exercised end-to-end, and every edge of the fallback chain
//! driven by killing the *preferred* arm mid-recovery. The invariant
//! throughout is the engine's usual one — survivors either complete with
//! bit-identical replicas or halt uniformly — plus the policy-specific
//! telemetry that proves which path actually ran.
//!
//! Fault points used (see DESIGN.md §12):
//! - `allreduce.step`  — the scripted primary victim;
//! - `join.ticket`     — a spare dying right after announcing (cold pool);
//! - `join.merge`      — a spare dying with a committed promotion ticket;
//! - `ckpt.sync`       — a survivor dying inside the state-sync broadcast;
//! - `policy.round`    — a survivor dying inside the policy commit itself.

use elastic::scenario::{Engine, ScenarioKind};
use elastic::{run_scenario, PolicyMode, ScenarioConfig, WorkerExit};
use std::sync::mpsc;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;
use transport::{FaultPlan, RankId};
use ulfm::RecoveryArm;

/// Telemetry counters are process-global; every test that reads deltas
/// serializes through this lock.
fn lock() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn watchdog() -> Duration {
    let secs = std::env::var("CHAOS_WATCHDOG_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120u64);
    Duration::from_secs(secs)
}

fn run_with_watchdog(cfg: ScenarioConfig, label: &str) -> elastic::ScenarioResult {
    let (tx, rx) = mpsc::channel();
    let cfg2 = cfg.clone();
    std::thread::spawn(move || {
        let _ = tx.send(run_scenario(&cfg2));
    });
    match rx.recv_timeout(watchdog()) {
        Ok(r) => r,
        Err(_) => panic!("{label}: scenario deadlocked (watchdog expired)"),
    }
}

/// Counter delta helper: snapshot on construction, assert later.
struct Delta {
    counter: std::sync::Arc<telemetry::Counter>,
    before: u64,
}

impl Delta {
    fn new(name: &str) -> Self {
        let counter = telemetry::counter(name);
        let before = counter.get();
        Self { counter, before }
    }

    fn get(&self) -> u64 {
        self.counter.get() - self.before
    }
}

/// The shared baseline: six workers on two nodes, victim 2 dies at its
/// 7th `allreduce.step` hit (inside training step 0), no joiners.
fn base(policy_mode: PolicyMode, spares: usize) -> ScenarioConfig {
    ScenarioConfig {
        spares,
        policy_mode,
        ..ScenarioConfig::quick(Engine::UlfmForward, ScenarioKind::Downscale)
    }
}

/// With the default ring algorithm a 6-rank allreduce crosses the
/// `allreduce.step` fault point 10 times, and the default model has 4
/// tensors — 40 hits per training step. Occurrence 125 therefore kills
/// the victim early in training step 3.
const FAIL_IN_STEP_3: u64 = 125;

#[test]
fn static_promotion_absorbs_failure_without_shrink() {
    let _g = lock();
    let promoted = Delta::new("elastic.policy.outcome.promoted");
    let decided = Delta::new("elastic.policy.decision.spare");
    let cfg = base(PolicyMode::Static(RecoveryArm::PromoteSpares), 1);
    let res = run_with_watchdog(cfg.clone(), "static promotion");
    // The spare fills the dead victim's slot: all five survivors plus the
    // promoted spare complete, at full strength.
    assert_eq!(
        res.completed(),
        cfg.workers,
        "spare must replace the victim"
    );
    for e in res.exits.iter().filter(|e| e.completed()) {
        assert_eq!(
            e.stats().unwrap().final_world,
            cfg.workers,
            "promotion must restore the world size"
        );
    }
    res.assert_consistent_state();
    assert!(decided.get() >= 1, "policy must have scored promotion");
    assert!(promoted.get() >= 1, "promotion must have completed");
    assert!(
        res.breakdowns.iter().any(|b| b.policy == Some("spare")),
        "some recovery episode must record the spare arm"
    );
}

#[test]
fn adaptive_with_cold_pool_commits_shrink() {
    let _g = lock();
    let shrunk = Delta::new("elastic.policy.decision.shrink");
    let promoted = Delta::new("elastic.policy.outcome.promoted");
    let cfg = base(PolicyMode::Adaptive, 0);
    let res = run_with_watchdog(cfg.clone(), "adaptive cold pool");
    // No spares, no checkpoint: the only feasible arm is the paper's
    // forward shrink, and the run looks exactly like the seed engine's.
    assert_eq!(res.completed(), cfg.workers - 1);
    res.assert_consistent_state();
    assert!(shrunk.get() >= 1, "adaptive must have committed shrink");
    assert_eq!(promoted.get(), 0, "nothing to promote");
}

#[test]
fn static_rollback_recomputes_from_checkpoint() {
    let _g = lock();
    let decided = Delta::new("elastic.policy.decision.rollback");
    let mut cfg = base(PolicyMode::Static(RecoveryArm::Rollback), 0);
    cfg.ckpt_every = 2;
    cfg.fail_at_op = FAIL_IN_STEP_3;
    let res = run_with_watchdog(cfg.clone(), "static rollback");
    assert_eq!(res.completed(), cfg.workers - 1);
    res.assert_consistent_state();
    assert!(decided.get() >= 1, "policy must have committed rollback");
    assert!(
        res.breakdowns.iter().any(|b| b.policy == Some("rollback")),
        "some recovery episode must record the rollback arm"
    );
    // The failure struck training step 3 with the newest checkpoint at
    // step 2: at least the victim's ring neighbours were already inside
    // step 3 and must therefore have re-executed it after the restore —
    // the recompute cost forward recovery exists to avoid.
    let recomputed: u64 = res
        .exits
        .iter()
        .filter_map(|e| e.stats())
        .map(|s| s.steps_recomputed)
        .sum();
    assert!(
        recomputed >= 1,
        "rollback must recompute the work since the checkpoint"
    );
}

#[test]
fn spare_dead_before_ticket_downgrades_to_shrink_in_commit() {
    let _g = lock();
    let unavailable = Delta::new("ulfm.policy.spare_unavailable");
    let decided = Delta::new("elastic.policy.decision.spare");
    let mut cfg = base(PolicyMode::Static(RecoveryArm::PromoteSpares), 1);
    // The spare announces (so members start training) and dies before it
    // can ever consume a ticket: the pool looks warm to the scorer but is
    // cold at commit time.
    cfg.extra_faults = FaultPlan::none().kill_at_point(RankId(cfg.workers), "join.ticket", 1);
    let res = run_with_watchdog(cfg.clone(), "spare dead before ticket");
    assert_eq!(res.completed(), cfg.workers - 1);
    res.assert_consistent_state();
    assert!(decided.get() >= 1, "the scorer saw a (stale) warm pool");
    assert!(
        unavailable.get() >= 1,
        "the commit must downgrade an empty pool to shrink"
    );
}

#[test]
fn spare_killed_with_committed_ticket_falls_back_to_shrink() {
    let _g = lock();
    let fallback = Delta::new("elastic.policy.fallback.spare_to_shrink");
    let mut cfg = base(PolicyMode::Static(RecoveryArm::PromoteSpares), 1);
    // The promotion commits — the spare holds its ticket — and then the
    // spare dies before the state sync can reach it: the sync's
    // RanksAlive bound trips and survivors fall back to the shrink redo.
    cfg.extra_faults = FaultPlan::none().kill_at_point(RankId(cfg.workers), "join.merge", 1);
    let res = run_with_watchdog(cfg.clone(), "spare killed mid-promotion");
    assert_eq!(
        res.completed(),
        cfg.workers - 1,
        "survivors must converge shrunk after the failed promotion"
    );
    res.assert_consistent_state();
    assert!(
        fallback.get() >= 1,
        "the failed promotion must fall back to shrink"
    );
    assert!(
        res.breakdowns
            .iter()
            .any(|b| b.policy == Some("spare->shrink")),
        "some episode must record the chained arm"
    );
}

#[test]
fn survivor_killed_during_rollback_sync_falls_back_to_shrink() {
    let _g = lock();
    let fallback = Delta::new("elastic.policy.fallback.rollback_to_shrink");
    let mut cfg = base(PolicyMode::Static(RecoveryArm::Rollback), 0);
    cfg.ckpt_every = 2;
    cfg.fail_at_op = FAIL_IN_STEP_3;
    // A second survivor dies inside the checkpoint broadcast: the rollback
    // arm's single-shot bound trips and the (re-shrunk) survivors redo
    // from retained inputs instead.
    cfg.extra_faults = FaultPlan::none().kill_at_point(RankId(1), "ckpt.sync", 1);
    let res = run_with_watchdog(cfg.clone(), "cascade into rollback sync");
    assert_eq!(res.completed(), cfg.workers - 2);
    res.assert_consistent_state();
    assert!(
        fallback.get() >= 1,
        "the broken rollback must fall back to shrink"
    );
    assert!(
        res.breakdowns
            .iter()
            .any(|b| b.policy == Some("rollback->shrink")),
        "some episode must record the chained arm"
    );
}

#[test]
fn death_inside_policy_round_falls_back_to_shrink() {
    let _g = lock();
    let fallback = Delta::new("elastic.policy.fallback.round_to_shrink");
    let mut cfg = base(PolicyMode::Adaptive, 0);
    // A survivor dies inside the policy commit itself — before any arm is
    // even decided. The round's failed commit is the fallback edge here.
    cfg.extra_faults = FaultPlan::none().kill_at_point(RankId(1), "policy.round", 1);
    let res = run_with_watchdog(cfg.clone(), "death inside policy round");
    assert_eq!(res.completed(), cfg.workers - 2);
    res.assert_consistent_state();
    assert!(
        fallback.get() >= 1,
        "a failed policy round must fall back to shrink"
    );
}

#[test]
fn cascade_below_floor_during_promotion_aborts_uniformly() {
    let _g = lock();
    let aborted = Delta::new("elastic.policy.fallback.to_abort");
    let mut cfg = base(PolicyMode::Static(RecoveryArm::PromoteSpares), 1);
    cfg.workers = 5;
    cfg.ranks_per_node = 5;
    cfg.spec.min_workers = 4;
    // The full chain: promotion commits, then the cascade kills both the
    // ticketed spare and a survivor during the sync, shrinking the group
    // below the floor — the chain's terminal edge.
    cfg.extra_faults = FaultPlan::none()
        .kill_at_point(RankId(cfg.workers), "join.merge", 1)
        .kill_at_point(RankId(1), "ckpt.sync", 1);
    let res = run_with_watchdog(cfg.clone(), "cascade below floor");
    assert_eq!(res.completed(), 0, "below the floor nobody may complete");
    let aborts = res
        .exits
        .iter()
        .filter(|e| matches!(e, WorkerExit::Aborted(_)))
        .count();
    assert_eq!(
        aborts, 3,
        "every survivor of the cascade must abort cleanly (got {:?})",
        res.exits
    );
    assert!(
        aborted.get() >= 1,
        "the chain's terminal abort edge must be recorded"
    );
}

#[test]
fn unneeded_spares_are_dismissed_at_completion() {
    let _g = lock();
    let dismissed = Delta::new("elastic.spare.dismissed");
    let mut cfg = ScenarioConfig {
        spares: 1,
        policy_mode: PolicyMode::Static(RecoveryArm::PromoteSpares),
        ..ScenarioConfig::quick(Engine::UlfmForward, ScenarioKind::Upscale)
    };
    cfg.joiners = 0; // fault-free run: the pool is never needed
    let res = run_with_watchdog(cfg.clone(), "spare dismissal");
    assert_eq!(res.completed(), cfg.workers);
    res.assert_consistent_state();
    assert!(dismissed.get() >= 1, "the unused spare must be dismissed");
    // The spare's exit rides after members and joiners: a clean non-event.
    let spare_exit = res.exits.last().expect("spare exit present");
    assert!(
        matches!(spare_exit, WorkerExit::Aborted(s) if s.steps_done == 0),
        "a dismissed spare leaves quietly with zero steps (got {spare_exit:?})"
    );
}

/// Deterministic replay: the same policy schedule twice gives bit-identical
/// final state, including through a fallback edge.
#[test]
fn policy_recovery_is_reproducible() {
    let _g = lock();
    let run = || {
        let mut cfg = base(PolicyMode::Static(RecoveryArm::PromoteSpares), 1);
        cfg.extra_faults = FaultPlan::none().kill_at_point(RankId(cfg.workers), "join.merge", 1);
        let res = run_with_watchdog(cfg, "reproducible fallback");
        res.assert_consistent_state()
    };
    assert_eq!(run(), run(), "fallback recovery must be deterministic");
}
