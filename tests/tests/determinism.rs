//! Reproducibility across the whole stack: identical seeds and fault
//! schedules give identical training outcomes — and identical telemetry
//! counter values — run to run.

use elastic::scenario::{Engine, ScenarioKind};
use elastic::{run_scenario, ScenarioConfig, TrainSpec};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The telemetry registry is process-global, so every test in this binary
/// serializes through one lock; the telemetry test below can then reset
/// and snapshot the registry without interference.
fn lock() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn cfg(engine: Engine, kind: ScenarioKind) -> ScenarioConfig {
    ScenarioConfig {
        spec: TrainSpec {
            total_steps: 8,
            steps_per_epoch: 4,
            ..TrainSpec::default()
        },
        ..ScenarioConfig::quick(engine, kind)
    }
}

#[test]
fn forward_scenario_is_reproducible() {
    let _g = lock();
    let a = run_scenario(&cfg(Engine::UlfmForward, ScenarioKind::Downscale));
    let b = run_scenario(&cfg(Engine::UlfmForward, ScenarioKind::Downscale));
    assert_eq!(
        a.assert_consistent_state(),
        b.assert_consistent_state(),
        "same seed + same fault schedule must give the same final model"
    );
    assert_eq!(a.completed(), b.completed());
}

#[test]
fn backward_scenario_is_reproducible() {
    let _g = lock();
    let a = run_scenario(&cfg(Engine::GlooBackward, ScenarioKind::Downscale));
    let b = run_scenario(&cfg(Engine::GlooBackward, ScenarioKind::Downscale));
    assert_eq!(a.assert_consistent_state(), b.assert_consistent_state());
}

#[test]
fn different_seeds_give_different_models() {
    let _g = lock();
    let mut c1 = cfg(Engine::UlfmForward, ScenarioKind::Downscale);
    let mut c2 = cfg(Engine::UlfmForward, ScenarioKind::Downscale);
    c1.spec.seed = 1;
    c2.spec.seed = 2;
    let a = run_scenario(&c1);
    let b = run_scenario(&c2);
    assert_ne!(a.assert_consistent_state(), b.assert_consistent_state());
}

/// Victim identity does not affect the *survivors'* convergence guarantee:
/// every choice of victim yields a consistent surviving replica set.
#[test]
fn any_victim_keeps_replicas_consistent() {
    let _g = lock();
    for victim in [0usize, 1, 3, 5] {
        let mut c = cfg(Engine::UlfmForward, ScenarioKind::Downscale);
        c.victim = victim;
        let res = run_scenario(&c);
        assert_eq!(res.completed(), c.workers - 1, "victim {victim}");
        res.assert_consistent_state();
    }
}

/// Fault timing sweep: failures injected at different protocol steps all
/// recover consistently (early, mid, late in the allreduce sequence).
#[test]
fn any_fault_timing_recovers() {
    let _g = lock();
    for fail_at in [1u64, 2, 5, 9, 14, 20] {
        let mut c = cfg(Engine::UlfmForward, ScenarioKind::Downscale);
        c.fail_at_op = fail_at;
        let res = run_scenario(&c);
        assert_eq!(res.completed(), c.workers - 1, "fail_at {fail_at}");
        res.assert_consistent_state();
    }
}

/// Telemetry determinism: an identical fault-free run produces identical
/// counter values and identical histogram/episode *counts* (durations are
/// wall-clock and therefore excluded). Fault-free, because failure timing
/// is racy by design: which worker observes PeerFailed vs Revoked varies,
/// and with it the retry counters.
#[test]
fn telemetry_counters_are_deterministic() {
    let _g = lock();
    let run = || {
        telemetry::reset();
        let mut c = cfg(Engine::UlfmForward, ScenarioKind::Upscale);
        c.joiners = 0; // no join service polling; fully deterministic
        let res = run_scenario(&c);
        assert_eq!(res.completed(), c.workers);
        res.assert_consistent_state();
        let snap = telemetry::snapshot();
        let hist_counts: Vec<(String, u64)> = snap
            .histograms
            .iter()
            .map(|(name, h)| (name.clone(), h.count))
            .collect();
        (snap.counters.clone(), hist_counts, snap.episodes.len())
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "counter values diverged between identical runs");
    assert_eq!(a.1, b.1, "span counts diverged between identical runs");
    assert_eq!(a.2, b.2, "episode counts diverged between identical runs");
}
