//! Cascade sweep: a *second* kill landing at every named fault point
//! inside the recovery machinery itself (`agree.round`, `shrink.attempt`,
//! `join.ticket`, `join.merge`, `ckpt.sync`), for both engines and
//! p ∈ {3, 4, 5}.
//!
//! The property under test is the tentpole claim: recovery paths are
//! re-entrant. A rank dying mid-agreement, mid-shrink, mid-join-handshake
//! or mid-checkpoint-broadcast must not hang the group or diverge the
//! replicas — every completing worker ends on the same agreed group with a
//! bit-identical model. A schedule that shrinks the world below
//! `min_workers` must instead end with every survivor returning
//! `WorkerExit::Aborted` under the watchdog, with the abort episode
//! visible in telemetry.
//!
//! ULFM-only points (`agree.round`, `shrink.attempt`, `join.*`) never fire
//! on the Gloo backward engine; those schedules degenerate to the
//! single-failure case there, which must still complete consistently —
//! scheduling a fault at a point an engine never reaches is a no-op, not
//! an error.

use elastic::scenario::{Engine, ScenarioKind};
use elastic::{run_scenario, RecoveryKind, RecoveryPolicy, ScenarioConfig, TrainSpec, WorkerExit};
use std::sync::mpsc;
use std::time::Duration;
use transport::{FaultPlan, RankId};

/// Per-scenario wall-clock budget. Overridable for slow CI machines (or
/// for patient local debugging) with `CHAOS_WATCHDOG_SECS`.
fn watchdog() -> Duration {
    let secs = std::env::var("CHAOS_WATCHDOG_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120u64);
    Duration::from_secs(secs)
}

/// The named fault points inside the recovery machinery (tentpole §1).
const RECOVERY_POINTS: [&str; 5] = [
    "agree.round",
    "shrink.attempt",
    "join.ticket",
    "join.merge",
    "ckpt.sync",
];

/// The fault points inside the lattice-agreement fast path. Scheduling a
/// kill at one of these switches the scenario to `AgreeImpl::Lattice` (the
/// flood protocol never passes them); on the Gloo backward engine they
/// never fire at all and the schedule degenerates to a single failure.
const LATTICE_POINTS: [&str; 3] = ["lattice.propose", "lattice.ack", "lattice.decide"];

/// Run one scenario under a watchdog; a case that neither returns nor
/// panics within the budget is reported as a deadlock.
fn run_with_watchdog(cfg: ScenarioConfig, label: &str) -> elastic::ScenarioResult {
    let (tx, rx) = mpsc::channel();
    let cfg2 = cfg.clone();
    std::thread::spawn(move || {
        let _ = tx.send(run_scenario(&cfg2));
    });
    match rx.recv_timeout(watchdog()) {
        Ok(r) => r,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!(
                "cascade {label} DEADLOCKED after {:?} (override with CHAOS_WATCHDOG_SECS)\n\
                 replay: train-seed={} victim=rank{} fail_at_op={} extra_faults={:?}\n\
                 full schedule: {cfg:?}",
                watchdog(),
                cfg.spec.seed,
                cfg.victim,
                cfg.fail_at_op,
                cfg.extra_faults,
            )
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            panic!("cascade {label} worker panicked: {cfg:?}")
        }
    }
}

/// Derive the double-fault schedule for one (engine, point, p) cell.
///
/// The primary victim is always rank 0, killed inside the first step's
/// allreduce so recovery machinery is guaranteed to run. The second kill
/// then lands *inside* that machinery:
/// - `agree.round` occurrence 2 — between flood-set rounds of the
///   recovery agreement;
/// - `shrink.attempt` occurrence 1 — at the start of the victim's first
///   shrink generation;
/// - `join.merge` occurrence 1 — on the post-shrink join leader (rank 1),
///   at the handshake entry (Replace, so a joiner is pending);
/// - `join.ticket` occurrence 1 — on the joiner itself (global rank p),
///   right after it announces and before its ticket is consumed;
/// - `ckpt.sync` occurrence 1 — during the post-merge checkpoint
///   broadcast (forward) / at the rank's first checkpoint (backward).
fn cascade_config(engine: Engine, point: &'static str, p: usize) -> ScenarioConfig {
    let (kind, joiners) = match point {
        "join.ticket" | "join.merge" | "ckpt.sync" => (ScenarioKind::Replace, 1),
        _ => (ScenarioKind::Downscale, 0),
    };
    let (second, occurrence) = match point {
        "join.ticket" => (p, 1), // the joiner registers as global rank p
        "agree.round" => (1, 2),
        _ => (1, 1),
    };
    // A kill scheduled inside the lattice protocol only fires when that
    // protocol is the active agreement implementation.
    let agree = if point.starts_with("lattice.") {
        ulfm::AgreeImpl::Lattice
    } else {
        ulfm::AgreeImpl::Flood
    };
    ScenarioConfig {
        engine,
        spec: TrainSpec {
            total_steps: 6,
            steps_per_epoch: 3,
            seed: 7700 + p as u64,
            agree,
            ..TrainSpec::default()
        },
        workers: p,
        ranks_per_node: 1,
        policy: RecoveryPolicy::DropProcess,
        kind,
        victim: 0,
        fail_at_op: 3,
        joiners,
        renormalize: false,
        perturb: None,
        suspicion_timeout: None,
        backend: transport::BackendKind::InProc,
        extra_faults: FaultPlan::none().kill_at_point(RankId(second), point, occurrence),
        spares: 0,
        policy_mode: elastic::PolicyMode::default(),
        ckpt_every: 0,
    }
}

fn check_cell(engine: Engine, point: &'static str, p: usize) {
    let cfg = cascade_config(engine, point, p);
    let label = format!("{engine:?}/{point}/p{p}");
    let total = cfg.workers
        + match cfg.kind {
            ScenarioKind::Downscale => 0,
            _ => cfg.joiners,
        };
    let res = run_with_watchdog(cfg.clone(), &label);

    assert_eq!(res.exits.len(), total, "{label}: lost a worker exit");
    let died = res
        .exits
        .iter()
        .filter(|e| matches!(e, WorkerExit::Died))
        .count();
    assert!(died <= 2, "{label}: {died} deaths, only two are scripted");
    let completed = res.completed();
    assert!(completed >= 1, "{label}: no survivor completed");
    assert!(
        !res.exits
            .iter()
            .any(|e| matches!(e, WorkerExit::Aborted(_))),
        "{label}: default min_workers must never abort"
    );

    // Survivor state is keyed to the final agreed group: every completing
    // worker must report the same final world, that world must equal the
    // completer count (dead ranks are out, everyone else is in), and the
    // model replicas must be bit-identical.
    let worlds: Vec<usize> = res
        .exits
        .iter()
        .filter(|e| e.completed())
        .filter_map(|e| e.stats().map(|s| s.final_world))
        .collect();
    assert!(
        worlds.iter().all(|&w| w == completed),
        "{label}: final worlds {worlds:?} disagree with {completed} completers"
    );
    res.assert_consistent_state();
}

#[test]
fn forward_cascade_sweep() {
    for point in RECOVERY_POINTS {
        for p in 3..=5 {
            check_cell(Engine::UlfmForward, point, p);
        }
    }
}

#[test]
fn backward_cascade_sweep() {
    for point in RECOVERY_POINTS {
        for p in 3..=5 {
            check_cell(Engine::GlooBackward, point, p);
        }
    }
}

#[test]
fn forward_lattice_cascade_sweep() {
    // The second kill lands *inside* the lattice agreement itself: at a
    // round entry (widened into the in-flight proposal), between a round's
    // send and receive phases, or right before the decide echo. Survivors
    // must converge to one view with bit-identical replicas.
    for point in LATTICE_POINTS {
        for p in 3..=5 {
            check_cell(Engine::UlfmForward, point, p);
        }
    }
}

#[test]
fn backward_lattice_cascade_sweep() {
    // The Gloo backward engine never runs ULFM agreement, so `lattice.*`
    // points never fire there — the cell must degenerate to a clean
    // single-failure recovery, not an error.
    for point in LATTICE_POINTS {
        for p in 3..=5 {
            check_cell(Engine::GlooBackward, point, p);
        }
    }
}

// ---------------------------------------------------------------------------
// Below-minimum shutdown: the cascade drains the group past the floor.
// ---------------------------------------------------------------------------

/// Two kills against a `min_workers = 3` floor on a 4-worker group: the
/// second death lands inside the recovery machinery, the shrunk world (2)
/// is below the floor, and every survivor must return
/// `WorkerExit::Aborted` — no hang, no degenerate training.
fn below_floor_config(engine: Engine, second_point: &'static str) -> ScenarioConfig {
    ScenarioConfig {
        engine,
        spec: TrainSpec {
            total_steps: 6,
            steps_per_epoch: 3,
            seed: 8800,
            min_workers: 3,
            ..TrainSpec::default()
        },
        workers: 4,
        ranks_per_node: 1,
        policy: RecoveryPolicy::DropProcess,
        kind: ScenarioKind::Downscale,
        victim: 0,
        fail_at_op: 3,
        joiners: 0,
        renormalize: false,
        perturb: None,
        suspicion_timeout: None,
        backend: transport::BackendKind::InProc,
        extra_faults: FaultPlan::none().kill_at_point(RankId(1), second_point, 1),
        spares: 0,
        policy_mode: elastic::PolicyMode::default(),
        ckpt_every: 0,
    }
}

fn check_below_floor(engine: Engine, second_point: &'static str) {
    let label = format!("{engine:?}/below-floor");
    let res = run_with_watchdog(below_floor_config(engine, second_point), &label);
    assert_eq!(res.exits.len(), 4, "{label}: lost a worker exit");
    let died = res
        .exits
        .iter()
        .filter(|e| matches!(e, WorkerExit::Died))
        .count();
    let aborted = res
        .exits
        .iter()
        .filter(|e| matches!(e, WorkerExit::Aborted(_)))
        .count();
    assert_eq!(died, 2, "{label}: both scripted victims must die");
    assert_eq!(
        aborted, 2,
        "{label}: every survivor must abort below the floor (exits: {:?})",
        res.exits
    );
    assert_eq!(
        res.completed(),
        0,
        "{label}: nobody may train below the floor"
    );
    assert!(
        res.breakdowns.iter().any(|b| b.kind == RecoveryKind::Abort),
        "{label}: the abort must be recorded as a recovery episode"
    );
    let snap = telemetry::snapshot();
    assert!(
        snap.counters
            .get("elastic.abort.below_min")
            .copied()
            .unwrap_or(0)
            >= 2,
        "{label}: below-min aborts must be counted in telemetry"
    );
}

#[test]
fn forward_below_floor_aborts_all_survivors() {
    // The second victim dies mid-shrink: the cascade completes inside one
    // recovery episode and lands straight on the floor check.
    check_below_floor(Engine::UlfmForward, "shrink.attempt");
}

#[test]
fn backward_below_floor_aborts_all_survivors() {
    // The backward engine never runs ULFM shrink; its second victim dies
    // at its first checkpoint instead.
    check_below_floor(Engine::GlooBackward, "ckpt.sync");
}
