//! Recovery-episode traces in the telemetry registry must reconcile with
//! the `elastic::profiler` breakdowns the figure benches aggregate: same
//! episode count, same per-kind totals (within 5%, though by construction
//! the match is exact — episodes are published from the same phase data).

use elastic::scenario::{Engine, ScenarioKind};
use elastic::{run_scenario, RecoveryKind, ScenarioConfig, TrainSpec};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The registry is process-global; serialize the tests in this binary.
fn lock() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn cfg(engine: Engine, kind: ScenarioKind) -> ScenarioConfig {
    ScenarioConfig {
        spec: TrainSpec {
            total_steps: 8,
            steps_per_epoch: 4,
            ..TrainSpec::default()
        },
        ..ScenarioConfig::quick(engine, kind)
    }
}

fn kind_label(kind: RecoveryKind) -> &'static str {
    match kind {
        RecoveryKind::Forward => "forward",
        RecoveryKind::Backward => "backward",
        RecoveryKind::Join => "join",
        RecoveryKind::Abort => "abort",
    }
}

fn assert_reconciles(engine: Engine, kind: ScenarioKind) {
    telemetry::reset();
    let res = run_scenario(&cfg(engine, kind));
    let snap = telemetry::snapshot();

    assert_eq!(
        snap.episodes.len(),
        res.breakdowns.len(),
        "every profiler breakdown must be traced as one telemetry episode"
    );

    for rk in [
        RecoveryKind::Forward,
        RecoveryKind::Backward,
        RecoveryKind::Join,
        RecoveryKind::Abort,
    ] {
        let label = kind_label(rk);
        let prof_ns: u64 = res
            .breakdowns
            .iter()
            .filter(|b| b.kind == rk)
            .map(|b| b.total().as_nanos() as u64)
            .sum();
        let telem_ns = snap.episode_total_ns(label);
        let diff = prof_ns.abs_diff(telem_ns) as f64;
        assert!(
            diff <= 0.05 * prof_ns.max(1) as f64,
            "{label}: telemetry {telem_ns}ns vs profiler {prof_ns}ns diverge >5%"
        );
    }
}

#[test]
fn forward_downscale_episodes_reconcile() {
    let _g = lock();
    assert_reconciles(Engine::UlfmForward, ScenarioKind::Downscale);
    // The failure path must also have left its marks on the lower layers.
    let snap = telemetry::snapshot();
    assert!(snap.counters.get("transport.deaths").copied().unwrap_or(0) >= 1);
    assert!(snap.counters.get("ulfm.agree.rounds").copied().unwrap_or(0) >= 1);
    assert!(snap.counters.get("ulfm.shrink.ops").copied().unwrap_or(0) >= 1);
    assert!(snap.episode_total_ns("forward") > 0);
}

#[test]
fn backward_downscale_episodes_reconcile() {
    let _g = lock();
    assert_reconciles(Engine::GlooBackward, ScenarioKind::Downscale);
    let snap = telemetry::snapshot();
    assert!(
        snap.counters
            .get("gloo.rendezvous.ops")
            .copied()
            .unwrap_or(0)
            >= 1
    );
    assert!(
        snap.counters
            .get("gloo.context.connects")
            .copied()
            .unwrap_or(0)
            >= 1
    );
    assert!(snap.episode_total_ns("backward") > 0);
}

#[test]
fn forward_replace_join_episodes_reconcile() {
    let _g = lock();
    assert_reconciles(Engine::UlfmForward, ScenarioKind::Replace);
    let snap = telemetry::snapshot();
    assert!(
        snap.episode_total_ns("join") > 0,
        "joiner state sync must be traced"
    );
}
