//! Chaos suite: randomized-but-deterministic fault schedules through
//! `run_scenario`, for both engines.
//!
//! Every case is derived from a SplitMix64 stream seeded by its case
//! number, so a failing case is replayable by number alone. A watchdog
//! bounds each scenario: the property under test is *liveness plus
//! uniformity* — a scenario either completes or halts consistently
//! (every completed replica bit-identical), and it never deadlocks.

use elastic::scenario::{Engine, ScenarioKind};
use elastic::{run_scenario, RecoveryPolicy, ScenarioConfig, TrainSpec, WorkerExit};
use std::sync::mpsc;
use std::time::Duration;

/// Cases per engine (split across two test fns for parallelism).
const CASES: u64 = 56;
const WATCHDOG: Duration = Duration::from_secs(120);

fn splitmix64(s: &mut u64) -> u64 {
    *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a valid, hang-free scenario from a case number.
///
/// Invariants that keep every case well-formed:
/// - `workers` is a multiple of `ranks_per_node`, so Replace joiners land
///   on a fresh node (never a node the DropNode policy blacklisted);
/// - Replace kills its victim within the first optimizer step
///   (`fail_at_op ≤ 5` < the ≥8 fault-point hits of one step), so the
///   epoch-boundary wait for joiners cannot precede the failure;
/// - Downscale may draw a `fail_at_op` beyond the run's fault-point hits:
///   the victim then never dies and the case degenerates to fault-free —
///   "completion" is the consistent halt we assert.
fn chaos_config(engine: Engine, case: u64) -> ScenarioConfig {
    let mut s = 0xC0FF_EE00 ^ (case << 1);
    let mut pick = |m: u64| splitmix64(&mut s) % m;
    let rpn = 1 + pick(3) as usize;
    let nodes = 2 + pick(3) as usize;
    let workers = rpn * nodes;
    let kind = match pick(3) {
        0 => ScenarioKind::Downscale,
        1 => ScenarioKind::Replace,
        _ => ScenarioKind::Upscale,
    };
    let policy = if pick(2) == 0 {
        RecoveryPolicy::DropProcess
    } else {
        RecoveryPolicy::DropNode
    };
    let victim = pick(workers as u64) as usize;
    let fail_at_op = match kind {
        ScenarioKind::Replace => 1 + pick(5),
        _ => 1 + pick(24),
    };
    let joiners = match kind {
        ScenarioKind::Downscale => 0,
        ScenarioKind::Replace => 1 + pick(2) as usize,
        ScenarioKind::Upscale => pick(3) as usize,
    };
    ScenarioConfig {
        engine,
        spec: TrainSpec {
            total_steps: 6,
            steps_per_epoch: 3,
            seed: 1000 + case,
            ..TrainSpec::default()
        },
        workers,
        ranks_per_node: rpn,
        policy,
        kind,
        victim,
        fail_at_op,
        joiners,
        renormalize: false,
    }
}

/// Run one scenario under a watchdog; a case that neither returns nor
/// panics within the budget is reported as a deadlock.
fn run_with_watchdog(cfg: ScenarioConfig, label: &str) -> elastic::ScenarioResult {
    let (tx, rx) = mpsc::channel();
    let cfg2 = cfg.clone();
    std::thread::spawn(move || {
        let _ = tx.send(run_scenario(&cfg2));
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(r) => r,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("chaos {label} DEADLOCKED after {WATCHDOG:?}: {cfg:?}")
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            panic!("chaos {label} worker panicked: {cfg:?}")
        }
    }
}

fn check_case(engine: Engine, case: u64) {
    let cfg = chaos_config(engine, case);
    let label = format!("{engine:?}/case{case}");
    let joiners = match cfg.kind {
        ScenarioKind::Downscale => 0,
        _ => cfg.joiners,
    };
    let total = cfg.workers + joiners;
    let res = run_with_watchdog(cfg.clone(), &label);

    assert_eq!(
        res.exits.len(),
        total,
        "{label}: lost a worker exit: {cfg:?}"
    );
    let died = res
        .exits
        .iter()
        .filter(|e| matches!(e, WorkerExit::Died))
        .count();
    let completed = res.completed();
    let excluded = total - died - completed;

    // Only the scripted victim ever dies.
    assert!(died <= 1, "{label}: {died} deaths: {cfg:?}");
    // Exclusion is a DropNode-only outcome.
    if cfg.policy == RecoveryPolicy::DropProcess {
        assert_eq!(
            excluded, 0,
            "{label}: exclusions under DropProcess: {cfg:?}"
        );
    }
    match cfg.kind {
        ScenarioKind::Upscale => {
            // Fault-free: everyone (including joiners) must finish.
            assert_eq!(completed, total, "{label}: fault-free loss: {cfg:?}");
        }
        _ => {
            if died == 1 {
                // The failure fired: some survivor must still finish.
                assert!(completed >= 1, "{label}: no survivor completed: {cfg:?}");
            } else {
                // Failure never fired (late fail_at_op): fault-free run.
                assert_eq!(
                    completed, total,
                    "{label}: unfired fault lost workers: {cfg:?}"
                );
            }
        }
    }
    // Uniformity: every completed replica holds bit-identical state.
    if completed > 0 {
        res.assert_consistent_state();
    }
}

#[test]
fn forward_chaos_first_half() {
    for case in 0..CASES / 2 {
        check_case(Engine::UlfmForward, case);
    }
}

#[test]
fn forward_chaos_second_half() {
    for case in CASES / 2..CASES {
        check_case(Engine::UlfmForward, case);
    }
}

#[test]
fn backward_chaos_first_half() {
    for case in 0..CASES / 2 {
        check_case(Engine::GlooBackward, case);
    }
}

#[test]
fn backward_chaos_second_half() {
    for case in CASES / 2..CASES {
        check_case(Engine::GlooBackward, case);
    }
}
