//! Chaos suite: randomized-but-deterministic fault schedules through
//! `run_scenario`, for both engines.
//!
//! Every case is derived from a SplitMix64 stream seeded by its case
//! number, so a failing case is replayable by number alone. A watchdog
//! bounds each scenario: the property under test is *liveness plus
//! uniformity* — a scenario either completes or halts consistently
//! (every completed replica bit-identical), and it never deadlocks.

use collectives::AllreduceAlgo;
use elastic::scenario::{Engine, ScenarioKind};
use elastic::{
    run_scenario, HierMode, RecoveryKind, RecoveryPolicy, ScenarioConfig, TrainSpec, WorkerExit,
};
use std::sync::mpsc;
use std::time::Duration;
use transport::{FaultPlan, LinkPerturb, PerturbPlan, RankId, RetryPolicy};

/// Cases per engine (split across two test fns for parallelism).
const CASES: u64 = 56;

/// Per-scenario wall-clock budget. Overridable for slow CI machines (or
/// for patient local debugging) with `CHAOS_WATCHDOG_SECS`.
fn watchdog() -> Duration {
    let secs = std::env::var("CHAOS_WATCHDOG_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120u64);
    Duration::from_secs(secs)
}

/// CI runs the suite across a small seed matrix by exporting
/// `CHAOS_SEED_OFFSET`; locally the offset defaults to 0 so failures are
/// replayable by case number alone.
fn seed_offset() -> u64 {
    std::env::var("CHAOS_SEED_OFFSET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn splitmix64(s: &mut u64) -> u64 {
    *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a valid, hang-free scenario from a case number.
///
/// Invariants that keep every case well-formed:
/// - `workers` is a multiple of `ranks_per_node`, so Replace joiners land
///   on a fresh node (never a node the DropNode policy blacklisted);
/// - Replace kills its victim within the first optimizer step
///   (`fail_at_op ≤ 5` < the ≥8 fault-point hits of one step), so the
///   epoch-boundary wait for joiners cannot precede the failure;
/// - Downscale may draw a `fail_at_op` beyond the run's fault-point hits:
///   the victim then never dies and the case degenerates to fault-free —
///   "completion" is the consistent halt we assert.
fn chaos_config(engine: Engine, case: u64) -> ScenarioConfig {
    let mut s = 0xC0FF_EE00 ^ ((case + (seed_offset() << 20)) << 1);
    let mut pick = |m: u64| splitmix64(&mut s) % m;
    let rpn = 1 + pick(3) as usize;
    let nodes = 2 + pick(3) as usize;
    let workers = rpn * nodes;
    let kind = match pick(3) {
        0 => ScenarioKind::Downscale,
        1 => ScenarioKind::Replace,
        _ => ScenarioKind::Upscale,
    };
    let policy = if pick(2) == 0 {
        RecoveryPolicy::DropProcess
    } else {
        RecoveryPolicy::DropNode
    };
    let victim = pick(workers as u64) as usize;
    let fail_at_op = match kind {
        ScenarioKind::Replace => 1 + pick(5),
        _ => 1 + pick(24),
    };
    let joiners = match kind {
        ScenarioKind::Downscale => 0,
        ScenarioKind::Replace => 1 + pick(2) as usize,
        ScenarioKind::Upscale => pick(3) as usize,
    };
    ScenarioConfig {
        engine,
        spec: TrainSpec {
            total_steps: 6,
            steps_per_epoch: 3,
            seed: 1000 + case,
            ..TrainSpec::default()
        },
        workers,
        ranks_per_node: rpn,
        policy,
        kind,
        victim,
        fail_at_op,
        joiners,
        renormalize: false,
        perturb: None,
        suspicion_timeout: None,
        backend: transport::BackendKind::InProc,
        extra_faults: FaultPlan::none(),
        spares: 0,
        policy_mode: elastic::PolicyMode::default(),
        ckpt_every: 0,
    }
}

/// Run one scenario under a watchdog; a case that neither returns nor
/// panics within the budget is reported as a deadlock.
fn run_with_watchdog(cfg: ScenarioConfig, label: &str) -> elastic::ScenarioResult {
    let (tx, rx) = mpsc::channel();
    let cfg2 = cfg.clone();
    std::thread::spawn(move || {
        let _ = tx.send(run_scenario(&cfg2));
    });
    match rx.recv_timeout(watchdog()) {
        Ok(r) => r,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!(
                "chaos {label} DEADLOCKED after {:?} (override with CHAOS_WATCHDOG_SECS)\n\
                 replay: CHAOS_SEED_OFFSET={} train-seed={} victim=rank{} fail_at_op={}\n\
                 full schedule: {cfg:?}",
                watchdog(),
                seed_offset(),
                cfg.spec.seed,
                cfg.victim,
                cfg.fail_at_op,
            )
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            panic!("chaos {label} worker panicked: {cfg:?}")
        }
    }
}

fn check_case(engine: Engine, case: u64) {
    let cfg = chaos_config(engine, case);
    let label = format!("{engine:?}/case{case}");
    let joiners = match cfg.kind {
        ScenarioKind::Downscale => 0,
        _ => cfg.joiners,
    };
    let total = cfg.workers + joiners;
    let res = run_with_watchdog(cfg.clone(), &label);

    assert_eq!(
        res.exits.len(),
        total,
        "{label}: lost a worker exit: {cfg:?}"
    );
    let died = res
        .exits
        .iter()
        .filter(|e| matches!(e, WorkerExit::Died))
        .count();
    let completed = res.completed();
    let excluded = total - died - completed;

    // Only the scripted victim ever dies.
    assert!(died <= 1, "{label}: {died} deaths: {cfg:?}");
    // Exclusion is a DropNode-only outcome.
    if cfg.policy == RecoveryPolicy::DropProcess {
        assert_eq!(
            excluded, 0,
            "{label}: exclusions under DropProcess: {cfg:?}"
        );
    }
    match cfg.kind {
        ScenarioKind::Upscale => {
            // Fault-free: everyone (including joiners) must finish.
            assert_eq!(completed, total, "{label}: fault-free loss: {cfg:?}");
        }
        _ => {
            if died == 1 {
                // The failure fired: some survivor must still finish.
                assert!(completed >= 1, "{label}: no survivor completed: {cfg:?}");
            } else {
                // Failure never fired (late fail_at_op): fault-free run.
                assert_eq!(
                    completed, total,
                    "{label}: unfired fault lost workers: {cfg:?}"
                );
            }
        }
    }
    // Uniformity: every completed replica holds bit-identical state.
    if completed > 0 {
        res.assert_consistent_state();
    }
}

#[test]
fn forward_chaos_first_half() {
    for case in 0..CASES / 2 {
        check_case(Engine::UlfmForward, case);
    }
}

#[test]
fn forward_chaos_second_half() {
    for case in CASES / 2..CASES {
        check_case(Engine::UlfmForward, case);
    }
}

#[test]
fn backward_chaos_first_half() {
    for case in 0..CASES / 2 {
        check_case(Engine::GlooBackward, case);
    }
}

#[test]
fn backward_chaos_second_half() {
    for case in CASES / 2..CASES {
        check_case(Engine::GlooBackward, case);
    }
}

// ---------------------------------------------------------------------------
// Perturbation schedules: adversarial links healed by the wire protocol.
// ---------------------------------------------------------------------------

/// A fault-free multi-step training run (no scripted kill) over a perturbed
/// fabric: every worker must finish, replicas must stay bit-identical.
fn perturbed_config(engine: Engine, plan: PerturbPlan) -> ScenarioConfig {
    ScenarioConfig {
        engine,
        spec: TrainSpec {
            total_steps: 6,
            steps_per_epoch: 3,
            seed: 4242,
            ..TrainSpec::default()
        },
        workers: 6,
        ranks_per_node: 3,
        policy: RecoveryPolicy::DropProcess,
        kind: ScenarioKind::Upscale,
        victim: 0,
        fail_at_op: u64::MAX,
        joiners: 0,
        renormalize: false,
        perturb: Some(plan),
        suspicion_timeout: None,
        backend: transport::BackendKind::InProc,
        extra_faults: FaultPlan::none(),
        spares: 0,
        policy_mode: elastic::PolicyMode::default(),
        ckpt_every: 0,
    }
}

fn check_perturbed_completion(
    engine: Engine,
    plan: PerturbPlan,
    label: &str,
) -> elastic::ScenarioResult {
    let cfg = perturbed_config(engine, plan);
    let total = cfg.workers;
    let res = run_with_watchdog(cfg, label);
    assert_eq!(
        res.completed(),
        total,
        "{label}: perturbation cost a worker (exits: {:?})",
        res.exits
    );
    // Uniformity is the "no corrupt frame was silently delivered" proof:
    // a payload that slipped past the checksum would diverge the replicas.
    res.assert_consistent_state();
    res
}

/// ISSUE acceptance: 1% drop + 0.1% corruption under a fixed seed — both
/// engines finish multi-step training with bitwise-identical replicas and
/// nonzero retransmission work.
#[test]
fn acceptance_drop_and_corrupt_forward() {
    let plan =
        PerturbPlan::seeded(0xACCE_0001).all_links(LinkPerturb::clean().drop(0.01).corrupt(0.001));
    let res = check_perturbed_completion(Engine::UlfmForward, plan, "accept/forward");
    assert!(
        res.fabric_stats.retransmits > 0,
        "1% drop must force retransmissions (stats: {:?})",
        res.fabric_stats
    );
    assert_eq!(
        res.fabric_stats.suspicions, 0,
        "a lossy-but-live link must not be suspected"
    );
}

#[test]
fn acceptance_drop_and_corrupt_backward() {
    let plan =
        PerturbPlan::seeded(0xACCE_0002).all_links(LinkPerturb::clean().drop(0.01).corrupt(0.001));
    let res = check_perturbed_completion(Engine::GlooBackward, plan, "accept/backward");
    assert!(
        res.fabric_stats.retransmits > 0,
        "1% drop must force retransmissions (stats: {:?})",
        res.fabric_stats
    );
    assert_eq!(
        res.fabric_stats.suspicions, 0,
        "a lossy-but-live link must not be suspected"
    );
}

/// Drop-heavy schedule: 10% loss + 10% duplication on every link.
#[test]
fn drop_heavy_schedule_both_engines() {
    for (engine, label) in [
        (Engine::UlfmForward, "drop-heavy/forward"),
        (Engine::GlooBackward, "drop-heavy/backward"),
    ] {
        let plan = PerturbPlan::seeded(0xD20_0001)
            .all_links(LinkPerturb::clean().drop(0.10).duplicate(0.10));
        let res = check_perturbed_completion(engine, plan, label);
        assert!(res.fabric_stats.retransmits > 0, "{label}: no retransmits");
        assert!(
            res.fabric_stats.dup_suppressed > 0,
            "{label}: duplicated frames must be suppressed by seq tracking"
        );
    }
}

/// Drop-heavy schedule over the *fused* gradient pipeline: the same 10%
/// loss + 10% duplication, but with gradients packed into Horovod-style
/// buckets reduced by size-adaptive `Auto` allreduces, and a scripted
/// mid-training kill on top. Fused buckets carry larger frames over fewer
/// collectives, so this exercises retransmission and revoke → agree →
/// shrink recovery on the fused path specifically.
#[test]
fn fused_drop_heavy_schedule_both_engines() {
    for (engine, label) in [
        (Engine::UlfmForward, "fused-drop-heavy/forward"),
        (Engine::GlooBackward, "fused-drop-heavy/backward"),
    ] {
        let plan = PerturbPlan::seeded(0xF05E_0004)
            .all_links(LinkPerturb::clean().drop(0.10).duplicate(0.10));
        let mut cfg = perturbed_config(engine, plan);
        // 600 bytes splits the default MLP's ready-order gradients into a
        // multi-tensor bucket, an oversized singleton, and a tail bucket.
        cfg.spec.fusion = Some(600);
        cfg.spec.algo = AllreduceAlgo::auto();
        cfg.kind = ScenarioKind::Downscale;
        cfg.victim = 3;
        cfg.fail_at_op = 5;
        let total = cfg.workers;
        let res = run_with_watchdog(cfg, label);
        let died = res
            .exits
            .iter()
            .filter(|e| matches!(e, WorkerExit::Died))
            .count();
        assert_eq!(died, 1, "{label}: scripted victim must die exactly once");
        assert_eq!(
            res.completed(),
            total - 1,
            "{label}: survivors lost (exits: {:?})",
            res.exits
        );
        assert!(res.fabric_stats.retransmits > 0, "{label}: no retransmits");
        assert!(
            res.fabric_stats.dup_suppressed > 0,
            "{label}: duplicated frames must be suppressed by seq tracking"
        );
        res.assert_consistent_state();
    }
}

/// Corrupt-heavy schedule: 5% of frames bit-flipped in flight. Every one
/// must be caught by the checksum (counted) and healed by retransmission —
/// never delivered upward.
#[test]
fn corrupt_heavy_schedule_both_engines() {
    for (engine, label) in [
        (Engine::UlfmForward, "corrupt-heavy/forward"),
        (Engine::GlooBackward, "corrupt-heavy/backward"),
    ] {
        let plan = PerturbPlan::seeded(0xC0 + 2).all_links(LinkPerturb::clean().corrupt(0.05));
        let res = check_perturbed_completion(engine, plan, label);
        assert!(
            res.fabric_stats.corrupt_frames > 0,
            "{label}: corruption schedule never fired"
        );
        assert!(res.fabric_stats.retransmits > 0, "{label}: no retransmits");
    }
}

/// Delay + kill: a jittery (delayed) fabric combined with a scripted
/// mid-training process failure. The failure must still be recovered and
/// survivor replicas stay uniform.
#[test]
fn delay_plus_kill_schedule_both_engines() {
    for (engine, label) in [
        (Engine::UlfmForward, "delay+kill/forward"),
        (Engine::GlooBackward, "delay+kill/backward"),
    ] {
        let plan = PerturbPlan::seeded(0xDE1A_0003).all_links(LinkPerturb::clean().delay(
            0.2,
            Duration::from_micros(50),
            Duration::from_micros(500),
        ));
        let mut cfg = perturbed_config(engine, plan);
        cfg.kind = ScenarioKind::Downscale;
        cfg.victim = 4;
        cfg.fail_at_op = 9;
        let total = cfg.workers;
        let res = run_with_watchdog(cfg, label);
        let died = res
            .exits
            .iter()
            .filter(|e| matches!(e, WorkerExit::Died))
            .count();
        assert_eq!(died, 1, "{label}: scripted victim must die exactly once");
        assert_eq!(
            res.completed(),
            total - 1,
            "{label}: survivors lost (exits: {:?})",
            res.exits
        );
        res.assert_consistent_state();
    }
}

/// ISSUE acceptance: total loss of a rank's inbound links makes it fall
/// silent. Instead of hanging, its peers' retransmission budgets run dry,
/// the rank is *suspected* dead, and the stack runs the ordinary ULFM
/// revoke → agree → shrink recovery within the configured deadline.
#[test]
fn total_link_loss_becomes_suspicion_recovery() {
    let workers = 4;
    let victim = 2;
    let plan = PerturbPlan::seeded(0x51_1E47)
        .links_into(RankId(victim), workers, LinkPerturb::clean().drop(1.0))
        .retry(RetryPolicy {
            max_retries: 6,
            base: Duration::from_micros(200),
            cap: Duration::from_millis(2),
        });
    let cfg = ScenarioConfig {
        engine: Engine::UlfmForward,
        spec: TrainSpec {
            total_steps: 6,
            steps_per_epoch: 3,
            seed: 7,
            ..TrainSpec::default()
        },
        workers,
        ranks_per_node: 2,
        policy: RecoveryPolicy::DropProcess,
        kind: ScenarioKind::Downscale,
        victim,
        fail_at_op: u64::MAX, // the scripted fault never fires: death comes from suspicion
        joiners: 0,
        renormalize: false,
        perturb: Some(plan),
        suspicion_timeout: Some(Duration::from_millis(500)),
        backend: transport::BackendKind::InProc,
        extra_faults: FaultPlan::none(),
        spares: 0,
        policy_mode: elastic::PolicyMode::default(),
        ckpt_every: 0,
    };
    let res = run_with_watchdog(cfg, "suspicion/total-loss");
    let died = res
        .exits
        .iter()
        .filter(|e| matches!(e, WorkerExit::Died))
        .count();
    assert_eq!(died, 1, "only the silenced rank may die: {:?}", res.exits);
    assert_eq!(
        res.completed(),
        workers - 1,
        "survivors must finish after suspicion recovery: {:?}",
        res.exits
    );
    assert!(
        res.fabric_stats.suspicions >= 1,
        "death must come from the failure detector (stats: {:?})",
        res.fabric_stats
    );
    res.assert_consistent_state();
}

// ---------------------------------------------------------------------------
// Cascade schedules: a second kill inside the recovery machinery itself.
// CI's seed matrix (CHAOS_SEED_OFFSET) rotates the world size and the fault
// point each schedule targets; `tests/tests/cascade_sweep.rs` covers the
// full point × engine × p grid deterministically.
// ---------------------------------------------------------------------------

fn cascade_base(engine: Engine, kind: ScenarioKind, workers: usize) -> ScenarioConfig {
    ScenarioConfig {
        engine,
        spec: TrainSpec {
            total_steps: 6,
            steps_per_epoch: 3,
            seed: 9000 + seed_offset(),
            ..TrainSpec::default()
        },
        workers,
        ranks_per_node: 1,
        policy: RecoveryPolicy::DropProcess,
        kind,
        victim: 0,
        fail_at_op: 3,
        joiners: if kind == ScenarioKind::Downscale {
            0
        } else {
            1
        },
        renormalize: false,
        perturb: None,
        suspicion_timeout: None,
        backend: transport::BackendKind::InProc,
        extra_faults: FaultPlan::none(),
        spares: 0,
        policy_mode: elastic::PolicyMode::default(),
        ckpt_every: 0,
    }
}

/// Double-kill: the primary victim triggers recovery, a second victim dies
/// inside it. Survivors must converge on a uniform group and state.
#[test]
fn cascade_double_kill_both_engines() {
    let off = seed_offset() as usize;
    let p = 4 + off % 2;
    for (engine, point) in [
        // ULFM points rotate with the seed matrix; the backward engine's
        // only recovery fault point is its checkpoint.
        (
            Engine::UlfmForward,
            ["agree.round", "shrink.attempt"][off % 2],
        ),
        (Engine::GlooBackward, "ckpt.sync"),
    ] {
        let occurrence = if point == "agree.round" { 2 } else { 1 };
        let mut cfg = cascade_base(engine, ScenarioKind::Downscale, p);
        cfg.extra_faults = FaultPlan::none().kill_at_point(RankId(1), point, occurrence);
        let label = format!("cascade-double/{engine:?}/{point}");
        let res = run_with_watchdog(cfg, &label);
        let died = res
            .exits
            .iter()
            .filter(|e| matches!(e, WorkerExit::Died))
            .count();
        assert_eq!(died, 2, "{label}: both scripted victims must die");
        assert_eq!(res.completed(), p - 2, "{label}: survivors lost");
        res.assert_consistent_state();
    }
}

/// Kill-during-join: the second death lands on the join path — the
/// accepting leader (`join.merge`) or the joiner itself (`join.ticket`).
/// The group must still converge; a dead leader's pending joiner is
/// re-ticketed by the surviving lowest rank.
#[test]
fn cascade_kill_during_join() {
    let off = seed_offset() as usize;
    let p = 4 + off % 2;
    let (point, second) = [("join.merge", 1), ("join.ticket", p)][off % 2];
    let mut cfg = cascade_base(Engine::UlfmForward, ScenarioKind::Replace, p);
    cfg.extra_faults = FaultPlan::none().kill_at_point(RankId(second), point, 1);
    let label = format!("cascade-join/{point}");
    let res = run_with_watchdog(cfg, &label);
    let died = res
        .exits
        .iter()
        .filter(|e| matches!(e, WorkerExit::Died))
        .count();
    assert_eq!(died, 2, "{label}: both scripted victims must die");
    // p + 1 participants, two dead — whether the joiner is among the
    // completers depends on which join-path rank was the second victim.
    assert_eq!(res.completed(), p - 1, "{label}: survivors lost");
    res.assert_consistent_state();
}

/// Shrink-to-floor: the cascade drains the group below `min_workers`.
/// Every survivor must return `WorkerExit::Aborted` — watchdog-provably no
/// hang — and the abort must be traced as a recovery episode.
#[test]
fn cascade_shrink_to_floor_aborts() {
    for (engine, point) in [
        (Engine::UlfmForward, "shrink.attempt"),
        (Engine::GlooBackward, "ckpt.sync"),
    ] {
        let mut cfg = cascade_base(engine, ScenarioKind::Downscale, 4);
        cfg.spec.min_workers = 3;
        cfg.extra_faults = FaultPlan::none().kill_at_point(RankId(1), point, 1);
        let label = format!("cascade-floor/{engine:?}");
        let res = run_with_watchdog(cfg, &label);
        let died = res
            .exits
            .iter()
            .filter(|e| matches!(e, WorkerExit::Died))
            .count();
        let aborted = res
            .exits
            .iter()
            .filter(|e| matches!(e, WorkerExit::Aborted(_)))
            .count();
        assert_eq!(
            (died, aborted, res.completed()),
            (2, 2, 0),
            "{label}: every survivor must abort below the floor (exits: {:?})",
            res.exits
        );
        assert!(
            res.breakdowns.iter().any(|b| b.kind == RecoveryKind::Abort),
            "{label}: abort must be recorded as a recovery episode"
        );
    }
}

// ---------------------------------------------------------------------------
// Hierarchical schedules: deaths inside the two-level collective. The kill
// lands in a specific phase of the reduce-scatter → cross-ring → bcast
// pipeline; recovery must still run the ordinary revoke → agree → shrink
// path and rebuild the hierarchy from the agreed survivor set. CI's seed
// matrix rotates the fault occurrence each schedule targets.
// ---------------------------------------------------------------------------

fn hier_chaos_base(engine: Engine) -> ScenarioConfig {
    ScenarioConfig {
        engine,
        spec: TrainSpec {
            total_steps: 6,
            steps_per_epoch: 3,
            seed: 9500 + seed_offset(),
            hier: HierMode::Force,
            ..TrainSpec::default()
        },
        workers: 6,
        ranks_per_node: 3,
        policy: RecoveryPolicy::DropProcess,
        kind: ScenarioKind::Downscale,
        victim: 3,
        fail_at_op: 3 + seed_offset() % 5,
        joiners: 0,
        renormalize: false,
        perturb: None,
        suspicion_timeout: None,
        backend: transport::BackendKind::InProc,
        extra_faults: FaultPlan::none(),
        spares: 0,
        policy_mode: elastic::PolicyMode::default(),
        ckpt_every: 0,
    }
}

/// Kill a node leader mid-cross-ring. With 6 workers on 3-rank nodes the
/// leaders are ranks 0 and 3; in Force-hier mode only leaders execute the
/// cross exchange, so a scripted "allreduce.step" kill on rank 3 lands
/// inside the leader ring while rank 3's node-mates block in the bcast
/// phase. Recovery must reach those blocked non-leaders (flat-comm revoke),
/// shrink, promote a new leader, and converge bit-identically.
#[test]
fn hier_chaos_leader_death_mid_cross_ring() {
    for (engine, label) in [
        (Engine::UlfmForward, "hier-leader/forward"),
        (Engine::GlooBackward, "hier-leader/backward"),
    ] {
        let routed_before = telemetry::counter("elastic.hier.routed_buckets").get();
        let cfg = hier_chaos_base(engine);
        let total = cfg.workers;
        let res = run_with_watchdog(cfg, label);
        let died = res
            .exits
            .iter()
            .filter(|e| matches!(e, WorkerExit::Died))
            .count();
        assert_eq!(died, 1, "{label}: scripted leader must die exactly once");
        assert_eq!(
            res.completed(),
            total - 1,
            "{label}: survivors lost (exits: {:?})",
            res.exits
        );
        res.assert_consistent_state();
        if engine == Engine::UlfmForward {
            assert!(
                telemetry::counter("elastic.hier.routed_buckets").get() > routed_before,
                "{label}: the two-level path must actually have been exercised"
            );
        }
    }
}

/// Kill the last non-leader on a node, collapsing it to size 1. With 4
/// workers on 2-rank nodes ({0,1} and {2,3}), rank 3 is the only
/// non-leader of node 1 — it never enters the cross ring, so the kill is
/// scripted at "reduce.step" (the intra-node reduction) via extra_faults.
/// After the shrink, node 1 is just its leader: the rebuilt hierarchy has
/// a singleton node whose intra phases are no-ops, and the run must still
/// converge bit-identically.
#[test]
fn hier_chaos_node_collapses_to_leader_only() {
    for (engine, label) in [
        (Engine::UlfmForward, "hier-collapse/forward"),
        (Engine::GlooBackward, "hier-collapse/backward"),
    ] {
        let mut cfg = hier_chaos_base(engine);
        cfg.workers = 4;
        cfg.ranks_per_node = 2;
        cfg.victim = 3;
        // The scripted allreduce.step kill can never fire for a non-leader
        // in Force-hier mode; the real kill is the reduce.step schedule.
        cfg.fail_at_op = u64::MAX;
        cfg.extra_faults =
            FaultPlan::none().kill_at_point(RankId(3), "reduce.step", 3 + seed_offset() % 5);
        let total = cfg.workers;
        let res = run_with_watchdog(cfg, label);
        let died = res
            .exits
            .iter()
            .filter(|e| matches!(e, WorkerExit::Died))
            .count();
        assert_eq!(
            died, 1,
            "{label}: scripted non-leader must die exactly once"
        );
        assert_eq!(
            res.completed(),
            total - 1,
            "{label}: survivors lost (exits: {:?})",
            res.exits
        );
        res.assert_consistent_state();
    }
}
