//! The paper's claims, verified end-to-end: the capability matrix
//! (Table 2) by execution, and the cost-shape claims on both the threaded
//! runtime and the Summit-scale simulator.

use bench::{demonstrate_cell, paper_capability, TABLE2_ROWS};
use dnn::paper_models;
use elastic::profiler::RecoveryKind;
use elastic::scenario::{Engine, ScenarioKind};
use elastic::{run_scenario, ScenarioConfig, TrainSpec};
use simnet::{figure_rows, ClusterModel, SimScenario};

/// Table 2, executed: every ✓ cell of the paper's matrix actually works on
/// our reproduction (and the ULFM column is strictly more capable).
#[test]
fn table2_capability_matrix_demonstrated() {
    for (row, label) in TABLE2_ROWS.iter().enumerate() {
        for ulfm in [false, true] {
            if paper_capability(row, ulfm) {
                assert!(
                    demonstrate_cell(row, ulfm),
                    "claimed-supported cell failed: {label} / ulfm={ulfm}"
                );
            }
        }
        // ULFM supports everything; Elastic Horovod only node granularity.
        assert!(paper_capability(row, true));
    }
    assert!(!paper_capability(0, false));
    assert!(!paper_capability(2, false));
}

/// The threaded runtime shows the same *shape* the paper reports: forward
/// recovery is at least an order of magnitude cheaper than the baseline's
/// teardown-rendezvous-rollback on the identical fault.
#[test]
fn threaded_runtime_recovery_shape() {
    let spec = TrainSpec {
        total_steps: 6,
        steps_per_epoch: 3,
        ..TrainSpec::default()
    };
    let mk = |engine| ScenarioConfig {
        spec: spec.clone(),
        ..ScenarioConfig::quick(engine, ScenarioKind::Downscale)
    };
    let fwd = run_scenario(&mk(Engine::UlfmForward));
    let bwd = run_scenario(&mk(Engine::GlooBackward));

    let fwd_cost = fwd
        .mean_breakdown(RecoveryKind::Forward)
        .expect("forward episode")
        .total();
    // Backward recovery cost = exception episode + the reconfiguration
    // episode that follows it (rendezvous/reinit/rollback).
    let bwd_cost = bwd
        .mean_breakdown(RecoveryKind::Backward)
        .expect("backward episode")
        .total()
        + bwd
            .mean_breakdown(RecoveryKind::Join)
            .map(|b| b.total())
            .unwrap_or_default();
    assert!(
        bwd_cost > fwd_cost * 10,
        "expected ≥10x separation, got forward {fwd_cost:?} vs backward {bwd_cost:?}"
    );
}

/// Figures 5–7's monotone shapes on the simulator: the baseline's
/// communication-reconstruction cost grows with scale; ULFM's stays flat
/// (logarithmic); ULFM wins every comparable cell.
#[test]
fn simulated_figures_have_paper_shapes() {
    let cluster = ClusterModel::summit();
    for model in paper_models() {
        let rows = figure_rows(&model, &cluster);
        // (a) ULFM beats EH on comm reconstruction in every matched cell.
        for eh in rows.iter().filter(|r| !r.ulfm) {
            let twin = rows
                .iter()
                .find(|x| {
                    x.ulfm && x.gpus == eh.gpus && x.scenario == eh.scenario && x.level == eh.level
                })
                .unwrap();
            assert!(twin.comm_reconstruction < eh.comm_reconstruction);
        }
        // (b) EH Down-node comm cost grows with GPUs; ULFM's grows by less
        // than 2x across a 16x scale-up.
        let series = |ulfm: bool| -> Vec<f64> {
            rows.iter()
                .filter(|r| {
                    r.ulfm == ulfm
                        && r.scenario == SimScenario::Down
                        && r.level == simnet::Level::Node
                })
                .map(|r| r.comm_reconstruction)
                .collect()
        };
        let eh = series(false);
        let ulfm = series(true);
        assert!(
            eh.windows(2).all(|w| w[1] > w[0]),
            "{}: EH not monotone",
            model.name
        );
        assert!(
            ulfm.last().unwrap() / ulfm.first().unwrap() < 2.0,
            "{}: ULFM cost must stay near-flat",
            model.name
        );
    }
}

/// Model-size ordering (Figs. 5 vs 6 vs 7): heavier models make the
/// baseline's recovery more expensive; ULFM's failure path barely notices.
#[test]
fn model_size_ordering_matches_figures() {
    let cluster = ClusterModel::summit();
    let total_at = |model_idx: usize, ulfm: bool| -> f64 {
        figure_rows(&paper_models()[model_idx], &cluster)
            .iter()
            .filter(|r| {
                r.ulfm == ulfm
                    && r.gpus == 96
                    && r.scenario == SimScenario::Down
                    && r.level == simnet::Level::Node
            })
            .map(|r| r.total())
            .next()
            .unwrap()
    };
    // Elastic Horovod: VGG (fig5) > ResNet (fig6) > NasNet (fig7).
    assert!(total_at(0, false) > total_at(1, false));
    assert!(total_at(1, false) > total_at(2, false));
    // ULFM: spread across models is tiny.
    let spread = total_at(0, true) - total_at(2, true);
    assert!(spread < 0.05, "ULFM spread {spread}");
}
