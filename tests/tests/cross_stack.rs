//! Cross-crate integration: hand-written data-parallel training loops over
//! the raw substrates (no `elastic` engine), checking numerical agreement
//! with a single-process reference.

use collectives::{AllreduceAlgo, ReduceOp};
use dnn::{Model, Sgd, SyntheticDataset};
use transport::FaultPlan;
use ulfm::{Proc, Topology, Universe};

const FEATURES: usize = 8;
const CLASSES: usize = 3;
const GLOBAL_BATCH: usize = 24;
const STEPS: usize = 6;

fn reference_run() -> Vec<f32> {
    // Single process, full global batch each step.
    let mut model = Model::mlp(FEATURES, &[12], CLASSES, 11);
    let mut opt = Sgd::new(0.1, 0.9);
    let ds = SyntheticDataset::new(FEATURES, CLASSES, 5);
    for step in 0..STEPS {
        model.zero_grads();
        model.compute_gradients(&ds.batch(step, GLOBAL_BATCH));
        opt.step(&mut model.params_mut());
    }
    model.state_flat()
}

fn distributed_run(world: usize) -> Vec<Vec<f32>> {
    let u = Universe::without_faults(Topology::flat());
    let handles = u
        .spawn_batch(world, move |p: Proc| {
            let comm = p.init_comm();
            let mut model = Model::mlp(FEATURES, &[12], CLASSES, 11);
            let mut opt = Sgd::new(0.1, 0.9);
            let ds = SyntheticDataset::new(FEATURES, CLASSES, 5);
            for step in 0..STEPS {
                let shard = ds.shard(step, GLOBAL_BATCH, comm.rank(), comm.size());
                let weight = shard.labels.len() as f32 / GLOBAL_BATCH as f32;
                model.zero_grads();
                model.compute_gradients(&shard);
                let mut grads: Vec<Vec<f32>> = model
                    .grads()
                    .iter()
                    .map(|g| g.data().iter().map(|v| v * weight).collect())
                    .collect();
                for g in grads.iter_mut() {
                    comm.allreduce(g, ReduceOp::Sum, AllreduceAlgo::Ring)
                        .unwrap();
                }
                model.set_grads(&grads);
                opt.step(&mut model.params_mut());
            }
            model.state_flat()
        })
        .unwrap();
    handles.into_iter().map(|h| h.join()).collect()
}

/// Data-parallel training over the ULFM stack matches single-process
/// training on the same global batches, to floating-point reassociation
/// tolerance.
#[test]
fn data_parallel_matches_reference() {
    let reference = reference_run();
    for world in [2usize, 3, 4] {
        let states = distributed_run(world);
        // All replicas identical (bit-exact).
        for s in &states[1..] {
            assert_eq!(s, &states[0], "replicas diverged at world {world}");
        }
        // And close to the single-process reference.
        let max_rel: f32 = states[0]
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs() / b.abs().max(1e-3))
            .fold(0.0, f32::max);
        assert!(
            max_rel < 5e-2,
            "world {world}: distributed diverged from reference by {max_rel}"
        );
    }
}

/// The same loop over Gloo contexts produces bit-identical results to the
/// ULFM loop — collectives are the same algorithms over the same transport.
#[test]
fn gloo_and_ulfm_stacks_agree() {
    use gloo::Context;
    use std::sync::Arc;
    use transport::{Endpoint, Fabric};

    let world = 3;
    let ulfm_states = distributed_run(world);

    let fabric = Fabric::without_faults(Topology::flat());
    let ranks = fabric.register_ranks(world);
    let ranks_ref = &ranks;
    let gloo_states: Vec<Vec<f32>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..world)
            .map(|i| {
                let fabric = Arc::clone(&fabric);
                s.spawn(move || {
                    let ep = Endpoint::new(Arc::clone(&fabric), ranks_ref[i]);
                    let ctx = Context::connect(ep, 9, ranks_ref.clone(), i).unwrap();
                    let mut model = Model::mlp(FEATURES, &[12], CLASSES, 11);
                    let mut opt = Sgd::new(0.1, 0.9);
                    let ds = SyntheticDataset::new(FEATURES, CLASSES, 5);
                    for step in 0..STEPS {
                        let shard = ds.shard(step, GLOBAL_BATCH, ctx.rank(), ctx.size());
                        let weight = shard.labels.len() as f32 / GLOBAL_BATCH as f32;
                        model.zero_grads();
                        model.compute_gradients(&shard);
                        let mut grads: Vec<Vec<f32>> = model
                            .grads()
                            .iter()
                            .map(|g| g.data().iter().map(|v| v * weight).collect())
                            .collect();
                        for g in grads.iter_mut() {
                            ctx.allreduce(g, ReduceOp::Sum, AllreduceAlgo::Ring)
                                .unwrap();
                        }
                        model.set_grads(&grads);
                        opt.step(&mut model.params_mut());
                    }
                    let out = model.state_flat();
                    fabric.kill_rank(ranks_ref[i]);
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(
        gloo_states[0], ulfm_states[0],
        "stacks must agree bit-exactly"
    );
}

/// Raw forward recovery over the substrates: train, lose a worker, revoke +
/// shrink + redo, keep training — without the elastic engine's help.
#[test]
fn manual_forward_recovery_over_raw_stack() {
    let world = 4;
    let plan = FaultPlan::none().kill_at_point(transport::RankId(2), "allreduce.step", 4);
    let u = Universe::new(Topology::flat(), plan);
    let handles = u
        .spawn_batch(world, move |p: Proc| {
            let mut comm = p.init_comm();
            let mut model = Model::mlp(FEATURES, &[12], CLASSES, 11);
            let mut opt = Sgd::new(0.1, 0.9);
            let ds = SyntheticDataset::new(FEATURES, CLASSES, 5);
            let mut step = 0usize;
            while step < STEPS {
                let shard = ds.shard(step, GLOBAL_BATCH, comm.rank(), comm.size());
                let weight = shard.labels.len() as f32 / GLOBAL_BATCH as f32;
                model.zero_grads();
                model.compute_gradients(&shard);
                let grads_saved: Vec<Vec<f32>> = model
                    .grads()
                    .iter()
                    .map(|g| g.data().iter().map(|v| v * weight).collect())
                    .collect();
                let mut grads = grads_saved.clone();
                let mut i = 0usize;
                let ok = loop {
                    if i == grads.len() {
                        match comm.barrier() {
                            Ok(()) => break true,
                            Err(ulfm::UlfmError::SelfDied) => return None,
                            Err(_) => {}
                        }
                    } else {
                        match comm.allreduce(&mut grads[i], ReduceOp::Sum, AllreduceAlgo::Ring) {
                            Ok(()) => {
                                i += 1;
                                continue;
                            }
                            Err(ulfm::UlfmError::SelfDied) => return None,
                            Err(_) => {}
                        }
                    }
                    // Recovery: revoke, agree on the earliest failed op, shrink,
                    // restore retained inputs and redo.
                    comm.revoke();
                    let agreed = match comm.agree(u64::MAX, i as u64) {
                        Ok(a) => a,
                        Err(_) => return None,
                    };
                    comm = match comm.shrink() {
                        Ok(c) => c,
                        Err(_) => return None,
                    };
                    i = agreed.min as usize;
                    for (k, s) in grads_saved.iter().enumerate().skip(i) {
                        grads[k].copy_from_slice(s);
                    }
                };
                assert!(ok);
                model.set_grads(&grads);
                opt.step(&mut model.params_mut());
                step += 1;
            }
            p.retire();
            Some((comm.size(), model.state_flat()))
        })
        .unwrap();
    let results: Vec<Option<(usize, Vec<f32>)>> = handles.into_iter().map(|h| h.join()).collect();
    assert!(results[2].is_none(), "victim must die");
    let survivors: Vec<&(usize, Vec<f32>)> = results.iter().flatten().collect();
    assert_eq!(survivors.len(), 3);
    for (size, state) in survivors.iter() {
        assert_eq!(*size, 3);
        assert_eq!(state, &survivors[0].1, "survivor replicas diverged");
    }
}
