//! Exhaustive fault-point sweep over every collective algorithm.
//!
//! For every collective variant (allreduce ×3 algorithms, allgather ×2,
//! bcast, reduce, barrier) × every victim rank × every fault-point index ×
//! group sizes p ∈ {2,3,4,5}, kill the victim at exactly that protocol
//! step and drive the survivors through the paper's revoke → agree →
//! shrink → retry cycle. Survivors must converge to *bit-identical*
//! replicas that equal the sequential specification over the surviving
//! ranks' (deterministically regenerable) inputs. Fault indices past the
//! last protocol step of a variant degenerate into fault-free runs, which
//! must reproduce the full-group result — so the matrix also pins the
//! no-failure path of every algorithm.
//!
//! The worker protocol mirrors the elastic forward engine: run the
//! collective from retained inputs, AND-agree on group-wide success, and
//! on disagreement revoke + shrink and re-execute the whole collective
//! from the retained inputs on the shrunk communicator.

use collectives::{AllgatherAlgo, AllreduceAlgo, ReduceOp};
use transport::{FaultPlan, RankId, Topology};
use ulfm::{Proc, UlfmError, Universe};

/// Elements per reduction buffer. Deliberately not divisible by any tested
/// group size, so ring/Rabenseifner chunking hits uneven remainders.
const LEN: usize = 19;

/// Quarter-integer inputs: sums of any subset are exact in f32, so the
/// "bit-identical to the sequential spec" assertion below is watertight.
fn grad_input(rank: usize, len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| ((rank * 31 + i * 7 + 13) % 101) as f32 * 0.25 - 12.0)
        .collect()
}

fn sum_over(ranks: &[usize], len: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; len];
    for &r in ranks {
        for (o, v) in out.iter_mut().zip(grad_input(r, len)) {
            *o += v;
        }
    }
    out
}

fn f32_bytes(buf: &[f32]) -> Vec<u8> {
    buf.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Allgather block for a rank: variable length (allgatherv) and keyed by
/// the *original* rank so retries regenerate it bit-identically.
fn block_for(rank: usize, case: u64) -> Vec<u8> {
    (0..3 + rank % 3)
        .map(|i| (rank * 17 + i * 5 + case as usize) as u8)
        .collect()
}

/// Broadcast payload: a function of the *case*, not of the root's rank —
/// whoever is group-local rank 0 after a shrink can regenerate it.
fn payload(case: u64) -> Vec<u8> {
    (0..23u64).map(|i| (case * 31 + i * 7) as u8).collect()
}

/// One collective variant under sweep.
#[derive(Clone, Copy, Debug)]
enum Coll {
    Allreduce(AllreduceAlgo),
    Allgather(AllgatherAlgo),
    Bcast,
    Reduce,
    Barrier,
}

impl Coll {
    fn variants() -> Vec<Coll> {
        vec![
            Coll::Allreduce(AllreduceAlgo::Ring),
            Coll::Allreduce(AllreduceAlgo::RecursiveDoubling),
            Coll::Allreduce(AllreduceAlgo::Rabenseifner),
            Coll::Allgather(AllgatherAlgo::Ring),
            Coll::Allgather(AllgatherAlgo::Bruck),
            Coll::Bcast,
            Coll::Reduce,
            Coll::Barrier,
        ]
    }

    fn point(&self) -> &'static str {
        match self {
            Coll::Allreduce(_) => "allreduce.step",
            Coll::Allgather(_) => "allgather.step",
            Coll::Bcast => "bcast.step",
            Coll::Reduce => "reduce.step",
            Coll::Barrier => "barrier.step",
        }
    }

    /// Upper bound (plus one) on how many times any rank hits this
    /// variant's fault point, so the sweep covers every protocol step and
    /// one index past the end (the fault-free degenerate case).
    fn max_fault_index(&self, p: usize) -> u64 {
        let lg = (usize::BITS - (p - 1).leading_zeros()) as u64; // ⌈log₂ p⌉
        match self {
            Coll::Allreduce(_) => 2 * (p as u64 - 1) + 2,
            Coll::Allgather(_) => p as u64 + 1,
            Coll::Bcast | Coll::Reduce | Coll::Barrier => lg + 2,
        }
    }

    /// Run the collective once from regenerable inputs and serialize this
    /// rank's replica view of the result.
    fn execute(
        &self,
        comm: &ulfm::Communicator,
        orig: usize,
        case: u64,
    ) -> Result<Vec<u8>, UlfmError> {
        match *self {
            Coll::Allreduce(algo) => {
                let mut buf = grad_input(orig, LEN);
                comm.allreduce(&mut buf, ReduceOp::Sum, algo)?;
                Ok(f32_bytes(&buf))
            }
            Coll::Allgather(algo) => {
                let blocks = comm.allgather(&block_for(orig, case), algo)?;
                Ok(blocks.concat())
            }
            Coll::Bcast => {
                let mut buf = if comm.rank() == 0 {
                    payload(case)
                } else {
                    vec![0u8; payload(case).len()]
                };
                comm.bcast(0, &mut buf)?;
                Ok(buf)
            }
            Coll::Reduce => {
                let mut buf = grad_input(orig, LEN);
                comm.reduce(0, &mut buf, ReduceOp::Sum)?;
                // Only the root's buffer is defined after a reduce.
                Ok(if comm.rank() == 0 {
                    f32_bytes(&buf)
                } else {
                    Vec::new()
                })
            }
            Coll::Barrier => {
                comm.barrier()?;
                Ok(Vec::new())
            }
        }
    }

    /// Sequential specification: what a member holding final group rank
    /// `frank` must hold, given the ascending original ranks of the
    /// *contributing* group (the group of the accepted attempt).
    fn expected(&self, contributing: &[usize], frank: usize, case: u64) -> Vec<u8> {
        match *self {
            Coll::Allreduce(_) => f32_bytes(&sum_over(contributing, LEN)),
            Coll::Allgather(_) => contributing
                .iter()
                .flat_map(|&r| block_for(r, case))
                .collect(),
            Coll::Bcast => payload(case),
            Coll::Reduce => {
                // Only group rank 0 (the root) holds the reduction.
                if frank == 0 {
                    f32_bytes(&sum_over(contributing, LEN))
                } else {
                    Vec::new()
                }
            }
            Coll::Barrier => Vec::new(),
        }
    }
}

/// Run one (p, victim, variant, fault index) cell of the matrix.
fn run_case(p: usize, victim: usize, coll: Coll, fault_index: u64, case: u64) {
    let plan = FaultPlan::none().kill_at_point(RankId(victim), coll.point(), fault_index);
    let u = Universe::new(Topology::flat(), plan);
    let handles = u
        .spawn_batch(p, move |proc: Proc| {
            let orig = proc.rank().0;
            let mut cur = proc.init_comm();
            loop {
                // Attempt the collective from (re)generated inputs.
                let attempt = coll.execute(&cur, orig, case);
                let ok = match &attempt {
                    Ok(_) => true,
                    Err(UlfmError::SelfDied) => return None,
                    Err(_) => {
                        // Wake peers blocked on the dead rank's silence.
                        cur.revoke();
                        false
                    }
                };
                // Uniform agreement on group-wide success (AND over flags):
                // a raced-ahead rank may hold a completed result while a peer
                // failed, and must discard it and join the retry.
                let agreed = match cur.agree(ok as u64, 0) {
                    Ok(r) => r,
                    Err(UlfmError::SelfDied) => return None,
                    Err(e) => panic!("agree must tolerate peer death: {e}"),
                };
                if agreed.flags == 1 {
                    let replica = attempt.expect("agreement said every rank succeeded");
                    return Some((cur.size(), cur.rank(), replica));
                }
                cur.revoke();
                cur = match cur.shrink() {
                    Ok(c) => c,
                    Err(UlfmError::SelfDied) => return None,
                    Err(e) => panic!("survivor shrink failed: {e}"),
                };
            }
        })
        .unwrap();

    type Outcome = Option<(usize, usize, Vec<u8>)>;
    let results: Vec<Outcome> = handles.into_iter().map(|h| h.join()).collect();
    let survivors: Vec<usize> = results
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_some())
        .map(|(i, _)| i)
        .collect();
    assert!(
        survivors.len() >= p - 1,
        "{coll:?} p={p} victim={victim} fault_index={fault_index}: \
         more than the victim died: {survivors:?}"
    );
    // Uniform agreement forces every survivor to accept the *same* attempt,
    // so they must all report the same final group size: either the full
    // group (nobody failed, or the victim died after its last contribution
    // — e.g. a reduce root dying after every child's fire-and-forget send)
    // or the shrunk group after a revoke → agree → shrink → retry cycle.
    let world = results[survivors[0]].as_ref().map(|(s, _, _)| *s).unwrap();
    let contributing: Vec<usize> = if world == p {
        (0..p).collect()
    } else {
        assert_eq!(world, survivors.len(), "single scripted failure");
        survivors.clone()
    };
    for (i, r) in results.iter().enumerate() {
        let ctx = format!(
            "{coll:?} p={p} victim={victim} fault_index={fault_index} rank={i} world={world}"
        );
        match r {
            None => assert_eq!(i, victim, "unscripted death: {ctx}"),
            Some((size, frank, replica)) => {
                assert_eq!(*size, world, "survivors disagree on group: {ctx}");
                assert_eq!(
                    replica,
                    &coll.expected(&contributing, *frank, case),
                    "{ctx}"
                );
            }
        }
    }
}

fn sweep(p: usize) {
    for (vi, coll) in Coll::variants().into_iter().enumerate() {
        for victim in 0..p {
            for fault_index in 1..=coll.max_fault_index(p) {
                let case = ((vi * 1000 + p * 100 + victim * 10) as u64) + fault_index;
                run_case(p, victim, coll, fault_index, case);
            }
        }
    }
}

// ----------------------------------------------------------- hierarchical
//
// The same exhaustive matrix for the two-level allreduce: every phase of
// the hierarchical pipeline (intra-node reduce → cross-node exchange among
// leaders → intra-node broadcast) × every victim rank × every fault index ×
// p ∈ {2..6} × node shapes {1, 2, 3 ranks per node} (dense packing gives
// mixed shapes, e.g. p=5 at 2/node → nodes of 2, 2, 1). Fault semantics
// must be identical to the flat path: any death feeds the unchanged
// revoke → agree → shrink cycle, the hierarchy is rebuilt from the agreed
// survivor set, and the accepted replicas equal the sequential sum over the
// contributing ranks bit-identically (quarter-integer inputs are exact in
// f32, so "equals the sum" *is* "bit-identical to flat").

/// Which phase of the two-level allreduce the scripted kill targets. Ranks
/// that never execute a phase (singleton-node ranks never run the intra
/// phases; non-leaders never run the cross exchange) simply never die —
/// those cells degenerate into fault-free runs of the full group, pinning
/// the no-failure path of every shape.
#[derive(Clone, Copy, Debug)]
enum HierPhase {
    /// Intra-node binomial reduce onto the leader (`reduce.step`).
    Local,
    /// Cross-node ring among the leaders (`allreduce.step`).
    Cross,
    /// Intra-node binomial broadcast of the result (`bcast.step`).
    Bcast,
}

impl HierPhase {
    fn all() -> [HierPhase; 3] {
        [HierPhase::Local, HierPhase::Cross, HierPhase::Bcast]
    }

    fn point(&self) -> &'static str {
        match self {
            HierPhase::Local => "reduce.step",
            HierPhase::Cross => "allreduce.step",
            HierPhase::Bcast => "bcast.step",
        }
    }

    /// Upper bound (plus one) on how many times any rank hits this phase's
    /// fault point in one two-level allreduce, so the sweep covers every
    /// protocol step and one index past the end.
    fn max_fault_index(&self, p: usize, rpn: usize) -> u64 {
        let lg = |x: usize| {
            if x <= 1 {
                0
            } else {
                (usize::BITS - (x - 1).leading_zeros()) as u64
            }
        };
        let local = rpn.min(p);
        let nodes = p.div_ceil(rpn);
        match self {
            HierPhase::Cross => 2 * (nodes as u64).saturating_sub(1) + 2,
            HierPhase::Local | HierPhase::Bcast => lg(local) + 2,
        }
    }
}

/// One (p, ranks-per-node, victim, phase, fault index) cell: kill the
/// victim at exactly that step of the two-level allreduce and drive the
/// survivors through rebuild-hierarchy → retry until uniform agreement.
fn run_hier_case(p: usize, rpn: usize, victim: usize, phase: HierPhase, fault_index: u64) {
    let plan = FaultPlan::none().kill_at_point(RankId(victim), phase.point(), fault_index);
    let u = Universe::new(Topology::new(rpn), plan);
    let handles = u
        .spawn_batch(p, move |proc: Proc| {
            let orig = proc.rank().0;
            let mut cur = proc.init_comm();
            loop {
                // The hierarchy is rebuilt from the *current* membership on
                // every attempt — after a shrink this is where a dead
                // leader's node promotes its next rank.
                let h = ulfm::Hierarchy::build(&cur).expect("member maps onto a node");
                let mut buf = grad_input(orig, LEN);
                let attempt = cur.hier_allreduce(&h, &mut buf, ReduceOp::Sum, AllreduceAlgo::Ring);
                let ok = match &attempt {
                    Ok(_) => true,
                    Err(UlfmError::SelfDied) => return None,
                    Err(_) => {
                        cur.revoke();
                        false
                    }
                };
                let agreed = match cur.agree(ok as u64, 0) {
                    Ok(r) => r,
                    Err(UlfmError::SelfDied) => return None,
                    Err(e) => panic!("agree must tolerate peer death: {e}"),
                };
                if agreed.flags == 1 {
                    attempt.expect("agreement said every rank succeeded");
                    return Some((cur.size(), cur.rank(), f32_bytes(&buf)));
                }
                cur.revoke();
                cur = match cur.shrink() {
                    Ok(c) => c,
                    Err(UlfmError::SelfDied) => return None,
                    Err(e) => panic!("survivor shrink failed: {e}"),
                };
            }
        })
        .unwrap();

    type Outcome = Option<(usize, usize, Vec<u8>)>;
    let results: Vec<Outcome> = handles.into_iter().map(|h| h.join()).collect();
    let survivors: Vec<usize> = results
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_some())
        .map(|(i, _)| i)
        .collect();
    assert!(
        survivors.len() >= p - 1,
        "{phase:?} p={p} rpn={rpn} victim={victim} fault_index={fault_index}: \
         more than the victim died: {survivors:?}"
    );
    let world = results[survivors[0]].as_ref().map(|(s, _, _)| *s).unwrap();
    let contributing: Vec<usize> = if world == p {
        (0..p).collect()
    } else {
        assert_eq!(world, survivors.len(), "single scripted failure");
        survivors.clone()
    };
    let expected = f32_bytes(&sum_over(&contributing, LEN));
    for (i, r) in results.iter().enumerate() {
        let ctx = format!(
            "{phase:?} p={p} rpn={rpn} victim={victim} fault_index={fault_index} \
             rank={i} world={world}"
        );
        match r {
            None => assert_eq!(i, victim, "unscripted death: {ctx}"),
            Some((size, _, replica)) => {
                assert_eq!(*size, world, "survivors disagree on group: {ctx}");
                assert_eq!(replica, &expected, "{ctx}");
            }
        }
    }
}

fn hier_sweep(p: usize) {
    for rpn in [1usize, 2, 3] {
        for phase in HierPhase::all() {
            for victim in 0..p {
                for fault_index in 1..=phase.max_fault_index(p, rpn) {
                    run_hier_case(p, rpn, victim, phase, fault_index);
                }
            }
        }
    }
}

#[test]
fn hier_sweep_every_phase_every_fault_point_p2() {
    hier_sweep(2);
}

#[test]
fn hier_sweep_every_phase_every_fault_point_p3() {
    hier_sweep(3);
}

#[test]
fn hier_sweep_every_phase_every_fault_point_p4() {
    hier_sweep(4);
}

#[test]
fn hier_sweep_every_phase_every_fault_point_p5() {
    hier_sweep(5);
}

#[test]
fn hier_sweep_every_phase_every_fault_point_p6() {
    hier_sweep(6);
}

#[test]
fn sweep_every_collective_every_fault_point_p2() {
    sweep(2);
}

#[test]
fn sweep_every_collective_every_fault_point_p3() {
    sweep(3);
}

#[test]
fn sweep_every_collective_every_fault_point_p4() {
    sweep(4);
}

#[test]
fn sweep_every_collective_every_fault_point_p5() {
    sweep(5);
}
