//! Backend-generic transport conformance suite.
//!
//! Every [`transport::Backend`] implementation must present the same
//! contract to the layers above it — the ULFM communicator and the elastic
//! engines never know whether bytes move through an in-process mailbox or
//! a real socket. Each case below therefore runs identically on all three
//! backends: the in-process fabric, TCP sockets, and Unix-domain sockets.
//!
//! Covered contract points:
//!  * per-channel FIFO delivery under concurrent traffic,
//!  * checksummed-frame rejection (corrupt frames are never delivered),
//!  * ack/retransmit healing under seeded drop/duplicate/reorder,
//!  * timeout-based failure suspicion on silent peers (and the absence of
//!    suspicion for explicit caller deadlines),
//!  * clean teardown with no spurious deaths,
//!  * buffered messages surviving the sender's voluntary retirement,
//!  * elastic joins surviving joiner deaths at the `join.ticket` and
//!    `join.merge` fault points (socket flavors — the join rendezvous and
//!    link establishment are what differ per backend).

use std::sync::Arc;
use std::time::Duration;
use transport::{
    Backend, BackendKind, Endpoint, Fabric, FaultInjector, FaultPlan, LinkPerturb, PerturbPlan,
    RankId, RetryPolicy, SocketBackend, Topology, TransportError,
};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Flavor {
    InProc,
    Tcp,
    Unix,
}

const ALL_FLAVORS: [Flavor; 3] = [Flavor::InProc, Flavor::Tcp, Flavor::Unix];

/// Build an `n`-rank mesh of the given flavor with a fault schedule.
fn mesh(flavor: Flavor, n: usize, plan: FaultPlan) -> Vec<Endpoint> {
    match flavor {
        Flavor::InProc => {
            let fabric = Fabric::new(Topology::flat(), FaultInjector::new(plan));
            fabric
                .register_ranks(n)
                .into_iter()
                .map(|r| Endpoint::new(Arc::clone(&fabric), r))
                .collect()
        }
        Flavor::Tcp | Flavor::Unix => {
            let kind = match flavor {
                Flavor::Tcp => BackendKind::Tcp,
                _ => BackendKind::Unix,
            };
            SocketBackend::local_mesh(kind, Topology::flat(), n, plan)
                .expect("socket mesh")
                .into_iter()
                .map(|b| Endpoint::from_backend(b as Arc<dyn Backend>))
                .collect()
        }
    }
}

/// Socket service threads hold backend Arcs, so teardown is explicit.
fn teardown(eps: &[Endpoint]) {
    for ep in eps {
        ep.backend().shutdown();
    }
}

/// Sum a per-endpoint stat across the mesh (in-process endpoints share one
/// fabric, so the sum over-counts there — callers only assert `> 0`).
fn total(eps: &[Endpoint], field: impl Fn(&transport::FabricStats) -> u64) -> u64 {
    eps.iter().map(|ep| field(&ep.stats())).sum()
}

#[test]
fn p2p_delivery_is_fifo_per_channel() {
    for flavor in ALL_FLAVORS {
        let eps = mesh(flavor, 2, FaultPlan::none());
        let n_msgs = 64u64;
        std::thread::scope(|s| {
            let sender = &eps[0];
            s.spawn(move || {
                // Interleave two tags: FIFO must hold per (source, tag)
                // channel, not just globally.
                for i in 0..n_msgs {
                    sender.send(RankId(1), 7, &i.to_le_bytes()).unwrap();
                    sender.send(RankId(1), 9, &(i * 3).to_le_bytes()).unwrap();
                }
            });
            let receiver = &eps[1];
            s.spawn(move || {
                for i in 0..n_msgs {
                    let a = receiver.recv(RankId(0), 7).unwrap();
                    assert_eq!(a, i.to_le_bytes(), "{flavor:?}: tag 7 out of order");
                }
                for i in 0..n_msgs {
                    let b = receiver.recv(RankId(0), 9).unwrap();
                    assert_eq!(b, (i * 3).to_le_bytes(), "{flavor:?}: tag 9 out of order");
                }
            });
        });
        teardown(&eps);
    }
}

#[test]
fn corrupt_frames_are_rejected_then_healed_by_retransmit() {
    for flavor in ALL_FLAVORS {
        let eps = mesh(flavor, 2, FaultPlan::none());
        let plan = PerturbPlan::seeded(42)
            .all_links(LinkPerturb::clean().corrupt(0.4))
            .retry(RetryPolicy {
                max_retries: 64,
                base: Duration::from_micros(200),
                cap: Duration::from_millis(2),
            });
        for ep in &eps {
            ep.set_perturbation(plan.clone());
        }
        std::thread::scope(|s| {
            let sender = &eps[0];
            s.spawn(move || {
                for i in 0..32u64 {
                    sender.send(RankId(1), 5, &i.to_le_bytes()).unwrap();
                }
            });
            let receiver = &eps[1];
            s.spawn(move || {
                for i in 0..32u64 {
                    let got = receiver.recv(RankId(0), 5).unwrap();
                    assert_eq!(got, i.to_le_bytes(), "{flavor:?}: corrupted payload leaked");
                }
            });
        });
        assert!(
            total(&eps, |st| st.corrupt_frames) > 0,
            "{flavor:?}: the seeded plan should have corrupted at least one frame"
        );
        assert!(
            total(&eps, |st| st.retransmits) > 0,
            "{flavor:?}: rejected frames must be healed by retransmission"
        );
        teardown(&eps);
    }
}

#[test]
fn lossy_links_heal_via_ack_retransmit() {
    for flavor in ALL_FLAVORS {
        let eps = mesh(flavor, 2, FaultPlan::none());
        let plan = PerturbPlan::seeded(7)
            .all_links(LinkPerturb::clean().drop(0.3).duplicate(0.25).reorder(0.25))
            .retry(RetryPolicy {
                max_retries: 64,
                base: Duration::from_micros(200),
                cap: Duration::from_millis(2),
            });
        for ep in &eps {
            ep.set_perturbation(plan.clone());
        }
        std::thread::scope(|s| {
            let sender = &eps[0];
            s.spawn(move || {
                for i in 0..48u64 {
                    sender.send(RankId(1), 3, &i.to_le_bytes()).unwrap();
                }
            });
            let receiver = &eps[1];
            s.spawn(move || {
                // Exactly-once, in-order delivery despite drop/dup/reorder:
                // sequence numbers reassemble the channel.
                for i in 0..48u64 {
                    let got = receiver.recv(RankId(0), 3).unwrap();
                    assert_eq!(
                        got,
                        i.to_le_bytes(),
                        "{flavor:?}: lossy channel broke order"
                    );
                }
            });
        });
        assert!(
            total(&eps, |st| st.retransmits) > 0,
            "{flavor:?}: dropped frames must retransmit"
        );
        teardown(&eps);
    }
}

#[test]
fn silent_peer_is_suspected_but_explicit_deadline_is_not() {
    for flavor in ALL_FLAVORS {
        let eps = mesh(flavor, 2, FaultPlan::none());

        // An explicit caller deadline is the caller's own timeout: it must
        // report Timeout and *not* declare the peer failed.
        let r = eps[0].recv_timeout(RankId(1), 11, Duration::from_millis(50));
        assert_eq!(r, Err(TransportError::Timeout), "{flavor:?}");
        assert!(eps[0].is_peer_alive(RankId(1)), "{flavor:?}");
        assert_eq!(total(&eps, |st| st.suspicions), 0, "{flavor:?}");

        // An open-ended receive bounded by the suspicion timeout is the
        // failure detector: silence past it means the peer is dead.
        eps[0].set_suspicion_timeout(Some(Duration::from_millis(100)));
        let r = eps[0].recv(RankId(1), 11);
        assert_eq!(r, Err(TransportError::PeerDead(RankId(1))), "{flavor:?}");
        assert!(!eps[0].is_peer_alive(RankId(1)), "{flavor:?}");
        assert!(total(&eps, |st| st.suspicions) > 0, "{flavor:?}");
        teardown(&eps);
    }
}

#[test]
fn clean_teardown_is_prompt_and_never_a_suspicion() {
    for flavor in ALL_FLAVORS {
        let eps = mesh(flavor, 3, FaultPlan::none());
        for ep in &eps {
            ep.set_suspicion_timeout(Some(Duration::from_secs(30)));
        }
        // A full round of traffic, then teardown. A peer that observes a
        // neighbor's FIN before its own shutdown flag is set may record an
        // EOF-path death — that IS fail-stop semantics and is fine. What a
        // clean teardown must never produce is a *suspicion* (a silence
        // verdict) or a hang waiting for drains that cannot complete.
        for (i, ep) in eps.iter().enumerate() {
            ep.send(RankId((i + 1) % 3), 1, b"ring").unwrap();
        }
        for (i, ep) in eps.iter().enumerate() {
            let from = RankId((i + 2) % 3);
            assert_eq!(ep.recv(from, 1).unwrap(), b"ring", "{flavor:?}");
        }
        let start = std::time::Instant::now();
        teardown(&eps);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "{flavor:?}: teardown must not stall on drains"
        );
        assert_eq!(
            total(&eps, |st| st.suspicions),
            0,
            "{flavor:?}: clean teardown must not look like a silent failure"
        );
    }
}

// ---------------------------------------------------------------------------
// Elastic-join conformance: a joiner death at either join fault point must
// leave the group progressing, on every backend. The join rendezvous and
// link bootstrap are exactly what differ per backend (shared JoinServer
// in-process, store-backed NetJoin + socket dials for Tcp/Unix), so these
// run the full scenario harness rather than raw endpoints.
// ---------------------------------------------------------------------------

use elastic::scenario::{Engine, ScenarioKind};
use elastic::{run_scenario, ScenarioConfig, TrainSpec, WorkerExit};

fn join_fault_cfg(
    flavor: Flavor,
    joiners: usize,
    dead_joiner: usize,
    point: &str,
) -> ScenarioConfig {
    let backend = match flavor {
        Flavor::InProc => BackendKind::InProc,
        Flavor::Tcp => BackendKind::Tcp,
        Flavor::Unix => BackendKind::Unix,
    };
    ScenarioConfig {
        spec: TrainSpec {
            total_steps: 12,
            steps_per_epoch: 4,
            min_workers: 2,
            ..TrainSpec::default()
        },
        workers: 3,
        ranks_per_node: 3,
        // Upscale schedules no member faults; the only scripted death is
        // the joiner's, at the requested join fault point.
        joiners,
        extra_faults: FaultPlan::none().kill_at_point(RankId(dead_joiner), point, 1),
        backend,
        ..ScenarioConfig::quick(Engine::UlfmForward, ScenarioKind::Upscale)
    }
}

#[test]
fn joiner_killed_at_ticket_does_not_block_its_peer() {
    // Two joiners announce; one is killed right after announcing (before its
    // ticket lands). The members must not wedge on the corpse: the surviving
    // joiner is admitted and all four live replicas converge. Depending on
    // when the leader's failure detector catches the death, the corpse is
    // either filtered from the proposal or merged-then-shrunk — both end in
    // the same live membership.
    for flavor in ALL_FLAVORS {
        let res = run_scenario(&join_fault_cfg(flavor, 2, 4, "join.ticket"));
        assert_eq!(res.completed(), 4, "{flavor:?}: exits: {:?}", res.exits);
        assert!(
            matches!(res.exits[4], WorkerExit::Died),
            "{flavor:?}: killed joiner must report Died: {:?}",
            res.exits[4]
        );
        res.assert_consistent_state();
    }
}

#[test]
fn joiner_killed_at_merge_is_shrunk_back_out() {
    // The joiner holds a committed ticket — every member has already agreed
    // to the merge — and dies before its first synced step. The members'
    // next collective hits the corpse, revokes, and shrinks back to the
    // original three, which finish the run in agreement.
    for flavor in ALL_FLAVORS {
        let res = run_scenario(&join_fault_cfg(flavor, 1, 3, "join.merge"));
        assert_eq!(res.completed(), 3, "{flavor:?}: exits: {:?}", res.exits);
        assert!(
            matches!(res.exits[3], WorkerExit::Died),
            "{flavor:?}: killed joiner must report Died: {:?}",
            res.exits[3]
        );
        res.assert_consistent_state();
    }
}

#[test]
fn buffered_messages_survive_voluntary_retirement() {
    for flavor in ALL_FLAVORS {
        let eps = mesh(flavor, 2, FaultPlan::none());
        eps[1].send(RankId(0), 2, b"last words").unwrap();
        eps[1].retire();
        // ULFM requires already-matched traffic to complete: the buffered
        // message is delivered first, the failure is reported after.
        assert_eq!(
            eps[0].recv(RankId(1), 2).unwrap(),
            b"last words",
            "{flavor:?}"
        );
        assert_eq!(
            eps[0].recv(RankId(1), 2),
            Err(TransportError::PeerDead(RankId(1))),
            "{flavor:?}"
        );
        teardown(&eps);
    }
}
