//! Integration test host crate.
