//! Head-to-head on the threaded runtime: the same failure, absorbed by
//! ULFM forward recovery vs Elastic-Horovod-style backward recovery.
//! Prints both recovery-cost breakdowns (the wall-clock analogue of the
//! paper's Fig. 4).
//!
//! ```sh
//! cargo run -p examples --bin baseline_compare --release
//! ```

use elastic::profiler::RecoveryKind;
use elastic::scenario::{Engine, ScenarioKind};
use elastic::{run_scenario, RecoveryPolicy, ScenarioConfig, TrainSpec};
use std::time::Duration;

fn scenario(engine: Engine) -> ScenarioConfig {
    ScenarioConfig {
        spec: TrainSpec {
            total_steps: 10,
            steps_per_epoch: 5,
            ..TrainSpec::default()
        },
        workers: 6,
        ranks_per_node: 3,
        policy: RecoveryPolicy::DropNode,
        victim: 4,
        fail_at_op: 9,
        ..ScenarioConfig::quick(engine, ScenarioKind::Downscale)
    }
}

fn print_breakdown(label: &str, phases: &[(String, Duration)], total: Duration) {
    println!("{label}");
    for (name, d) in phases {
        println!("    {name:<18} {d:>12.3?}");
    }
    println!("    {:<18} {total:>12.3?}\n", "TOTAL");
}

fn main() {
    println!("Scenario I (drop node), 6 workers / 2 nodes, same fault for both engines.\n");

    let fwd = run_scenario(&scenario(Engine::UlfmForward));
    let bwd = run_scenario(&scenario(Engine::GlooBackward));

    let f = fwd
        .mean_breakdown(RecoveryKind::Forward)
        .expect("forward episode");
    print_breakdown(
        "ULFM forward recovery (revoke → agree → shrink → redo collective):",
        &f.phases
            .iter()
            .map(|p| (p.name.to_string(), p.duration))
            .collect::<Vec<_>>(),
        f.total(),
    );

    let b = bwd
        .mean_breakdown(RecoveryKind::Backward)
        .expect("backward episode");
    // The rendezvous/reinit/rollback phases live in the *reconfiguration*
    // record that follows the exception.
    let join = bwd.mean_breakdown(RecoveryKind::Join);
    let mut phases: Vec<(String, Duration)> = b
        .phases
        .iter()
        .map(|p| (p.name.to_string(), p.duration))
        .collect();
    let mut total = b.total();
    if let Some(j) = join {
        for p in &j.phases {
            phases.push((p.name.to_string(), p.duration));
            total += p.duration;
        }
    }
    print_breakdown(
        "Elastic-Horovod backward recovery (exception → rendezvous → reinit → rollback):",
        &phases,
        total,
    );

    println!(
        "survivors completed: forward {}/{}, backward {}/{}",
        fwd.completed(),
        6,
        bwd.completed(),
        6
    );
    println!("\nSame failure, same policy: forward recovery touches only the failed collective;");
    println!("the baseline rebuilds the world and rolls back. (Run `repro -- fig4` in the bench");
    println!("crate for the Summit-scale simulated version of this comparison.)");
}
