//! Quickstart: train a small model data-parallel over 4 workers with
//! ULFM-style forward recovery — no failures, just the happy path.
//!
//! ```sh
//! cargo run -p examples --bin quickstart
//! ```

use elastic::{run_forward_worker, ForwardConfig, TrainSpec, WorkerExit};
use ulfm::{Topology, Universe};

fn main() {
    let spec = TrainSpec {
        features: 16,
        hidden: vec![32, 16],
        classes: 4,
        global_batch: 64,
        steps_per_epoch: 5,
        total_steps: 20,
        ..TrainSpec::default()
    };
    let cfg = ForwardConfig::new(spec);
    let workers = 4;

    println!("training an MLP over {workers} workers (forward-recovery engine)\n");

    let universe = Universe::without_faults(Topology::flat());
    let cfg2 = cfg.clone();
    let handles = universe
        .spawn_batch(workers, move |proc| run_forward_worker(&proc, &cfg2, false))
        .unwrap();

    for (i, h) in handles.into_iter().enumerate() {
        match h.join().exit {
            WorkerExit::Completed(stats) => println!(
                "worker {i}: completed {} steps, final loss {:.4}, world {}, state 0x{:016x}",
                stats.steps_done, stats.final_loss, stats.final_world, stats.state_fingerprint
            ),
            other => println!("worker {i}: {other:?}"),
        }
    }
    println!(
        "\nall replicas print the same state fingerprint: data-parallel training is consistent."
    );
}
