//! What-if on the Summit-scale simulator: sweep a custom cluster or model
//! through the recovery cost model and print the figure-style series.
//!
//! ```sh
//! cargo run -p examples --bin summit_whatif [-- <gpus>]
//! ```

use dnn::paper_models;
use simnet::{
    backward_breakdown, forward_breakdown, ClusterModel, EpisodeConfig, Level, SimScenario,
};

fn main() {
    let gpus: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(96);
    let cluster = ClusterModel::summit();

    println!("simulated recovery episodes at {gpus} GPUs (Summit constants)\n");
    for model in paper_models() {
        println!(
            "── {} ({} tensors, {} MB state) ──",
            model.name, model.trainable_tensors, model.size_mb
        );
        for (scenario, label) in [
            (SimScenario::Down, "Down"),
            (SimScenario::Same, "Same"),
            (SimScenario::Up, "Up  "),
        ] {
            for level in [Level::Process, Level::Node] {
                let cfg = EpisodeConfig {
                    cluster,
                    model: model.clone(),
                    workers_before: gpus,
                    scenario,
                    level,
                };
                let fwd = forward_breakdown(&cfg).total();
                let bwd = backward_breakdown(&cfg).total();
                println!(
                    "  {label} {level:>7?}:  ULFM {fwd:>8.3} s   Elastic-Horovod {bwd:>8.3} s   ({:>5.1}x)",
                    bwd / fwd.max(1e-9)
                );
            }
        }
        println!();
    }
    println!("(`repro -- fig5|fig6|fig7` prints the full per-segment sweeps.)");
}
