//! Elastic scaling: start training with the workers that are ready, let
//! more join at epoch boundaries (the paper's Scenario III, "automated
//! upscaling"), and replace failed capacity (Scenario II).
//!
//! ```sh
//! cargo run -p examples --bin elastic_cloud
//! ```

use elastic::profiler::RecoveryKind;
use elastic::scenario::{Engine, ScenarioKind};
use elastic::{run_scenario, ScenarioConfig, TrainSpec};

fn main() {
    let spec = TrainSpec {
        total_steps: 16,
        steps_per_epoch: 4,
        ..TrainSpec::default()
    };

    // --- Scenario III: upscale -----------------------------------------
    println!("=== Scenario III: automated upscaling (4 → 7 workers) ===");
    let cfg = ScenarioConfig {
        spec: spec.clone(),
        workers: 4,
        joiners: 3,
        ..ScenarioConfig::quick(Engine::UlfmForward, ScenarioKind::Upscale)
    };
    let res = run_scenario(&cfg);
    println!(
        "completed: {}/{} workers; final world size {}",
        res.completed(),
        cfg.workers + cfg.joiners,
        res.exits
            .iter()
            .find_map(|e| e.stats())
            .map(|s| s.final_world)
            .unwrap_or(0)
    );
    if let Some(join) = res.mean_breakdown(RecoveryKind::Join) {
        println!(
            "mean join episode (merge + state broadcast): {:?}",
            join.total()
        );
    }
    res.assert_consistent_state();
    println!("replicas consistent after growth.\n");

    // --- Scenario II: replacement ---------------------------------------
    println!("=== Scenario II: replacement (6 workers, 1 dies, 1 joins) ===");
    let cfg = ScenarioConfig {
        spec,
        workers: 6,
        joiners: 1,
        victim: 2,
        fail_at_op: 11,
        ..ScenarioConfig::quick(Engine::UlfmForward, ScenarioKind::Replace)
    };
    let res = run_scenario(&cfg);
    println!(
        "completed: {}/{} (1 died, 1 replacement joined)",
        res.completed(),
        cfg.workers
    );
    if let Some(fwd) = res.mean_breakdown(RecoveryKind::Forward) {
        println!("mean failure recovery: {:?}", fwd.total());
    }
    res.assert_consistent_state();
    println!("worker count restored; training parameters tied to world size stay stable.");
}
