//! Fault drill: kill a worker in the middle of a gradient allreduce and
//! watch forward recovery absorb it (the paper's §3.2 mechanism, live).
//!
//! ```sh
//! cargo run -p examples --bin fault_drill [-- node]
//! ```
//! Pass `node` to use the drop-node policy (evicts the victim's healthy
//! node-mates too, as Elastic Horovod would).

use elastic::profiler::RecoveryKind;
use elastic::scenario::{Engine, ScenarioKind};
use elastic::{run_scenario, RecoveryPolicy, ScenarioConfig, TrainSpec, WorkerExit};

fn main() {
    let node_level = std::env::args().any(|a| a == "node");
    let policy = if node_level {
        RecoveryPolicy::DropNode
    } else {
        RecoveryPolicy::DropProcess
    };

    let cfg = ScenarioConfig {
        spec: TrainSpec {
            total_steps: 12,
            steps_per_epoch: 4,
            ..TrainSpec::default()
        },
        workers: 6,
        ranks_per_node: 3,
        policy,
        victim: 4,
        fail_at_op: 9,
        ..ScenarioConfig::quick(Engine::UlfmForward, ScenarioKind::Downscale)
    };

    println!(
        "6 workers on 2 nodes (3 per node); worker 4 dies mid-allreduce; policy = {policy:?}\n"
    );
    let res = run_scenario(&cfg);

    for (i, exit) in res.exits.iter().enumerate() {
        match exit {
            WorkerExit::Completed(s) => println!(
                "worker {i}: survived — {} steps, {} recovery episode(s), final world {}",
                s.steps_done, s.recoveries, s.final_world
            ),
            WorkerExit::Died => println!("worker {i}: KILLED by the drill"),
            WorkerExit::Excluded(_) => {
                println!("worker {i}: evicted by the drop-node policy (healthy node-mate)")
            }
            WorkerExit::Aborted(s) => println!(
                "worker {i}: run aborted below min_workers after {} steps",
                s.steps_done
            ),
        }
    }

    if let Some(bd) = res.mean_breakdown(RecoveryKind::Forward) {
        println!("\nmean forward-recovery breakdown (revoke → agree → shrink):");
        for p in &bd.phases {
            println!("  {:<10} {:>10.3?}", p.name, p.duration);
        }
        println!("  {:<10} {:>10.3?}", "total", bd.total());
    }
    let fp = res.assert_consistent_state();
    println!("\nsurvivor replicas agree bit-exactly (fingerprint 0x{fp:016x}).");
    println!("No checkpoint was taken, no rollback happened: the failed collective was re-executed from retained inputs.");
}
